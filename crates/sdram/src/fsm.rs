//! The bank-controller state machine as a declarative transition table.
//!
//! Each internal bank of an SDRAM moves through five observable states
//! (idle, activating, active, precharging, refreshing). Previously the
//! legal command set per state lived implicitly in `Sdram::can_issue`
//! match arms, and the command mnemonics used by the trace log and the
//! VCD exporter were duplicated string literals. This module makes the
//! state machine *data*: one [`TRANSITIONS`] table covering every
//! (state, event) pair, consumed by
//!
//! * the device model ([`Sdram::issue`](crate::Sdram::issue) derives
//!   row-buffer open/close from the successor state, and debug-asserts
//!   that every command `can_issue` admits is legal in the table),
//! * the trace log and VCD exporter (mnemonics and wave codes come
//!   from [`CmdClass`], eliminating string drift), and
//! * the `pva-analysis` binary, whose FSM pass exhaustively checks the
//!   table for completeness, reachability and dead states.
//!
//! The table captures *state-machine* legality. Multi-cycle timing
//! residuals that span states (tRC across an activate/precharge pair,
//! tRAS/tWR holding up a precharge inside `Active`) remain the job of
//! the [restimers](crate::Restimer); the table is necessary, not
//! sufficient, for issue legality — exactly the split between the FSM
//! PLA and the restimer counters in the §5.2.5 hardware. The same
//! split covers the channel-level constraints of modern device
//! generations (tCCD/tRRD/tFAW, see [`crate::ChannelTimers`] and the
//! [`crate::DeviceTiming`] tables): they are pure timing and never add
//! bank states, so this table is identical for every
//! [`crate::DevicePreset`].

/// Observable state of one internal bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankState {
    /// Row closed, precharge complete: ready for ACTIVATE.
    Idle,
    /// ACTIVATE accepted, tRCD still running: row open, not yet
    /// readable.
    Activating,
    /// Row open and tRCD satisfied: READ/WRITE legal.
    Active,
    /// PRECHARGE (or auto-precharge) accepted, tRP still running.
    Precharging,
    /// Device-wide AUTO REFRESH occupying the bank for tRFC.
    Refreshing,
}

impl BankState {
    /// Every state, in the order used by the transition table.
    pub const ALL: [BankState; 5] = [
        BankState::Idle,
        BankState::Activating,
        BankState::Active,
        BankState::Precharging,
        BankState::Refreshing,
    ];

    /// Human-readable state name (trace logs, diagnostics, waveforms).
    pub const fn name(self) -> &'static str {
        match self {
            BankState::Idle => "IDLE",
            BankState::Activating => "ACTIVATING",
            BankState::Active => "ACTIVE",
            BankState::Precharging => "PRECHARGING",
            BankState::Refreshing => "REFRESHING",
        }
    }

    /// Whether the row buffer holds an open row in this state.
    pub const fn row_open(self) -> bool {
        matches!(self, BankState::Activating | BankState::Active)
    }
}

/// Command classes as seen by one internal bank — the same granularity
/// the trace log and VCD export use (auto-precharge variants are
/// distinct operations on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdClass {
    /// ACTIVATE: open a row.
    Activate,
    /// READ without auto-precharge.
    Read,
    /// READ with auto-precharge.
    ReadAuto,
    /// WRITE without auto-precharge.
    Write,
    /// WRITE with auto-precharge.
    WriteAuto,
    /// Explicit PRECHARGE.
    Precharge,
    /// Device-wide AUTO REFRESH.
    Refresh,
}

impl CmdClass {
    /// Every command class, in mnemonic order.
    pub const ALL: [CmdClass; 7] = [
        CmdClass::Activate,
        CmdClass::Read,
        CmdClass::ReadAuto,
        CmdClass::Write,
        CmdClass::WriteAuto,
        CmdClass::Precharge,
        CmdClass::Refresh,
    ];

    /// Trace-log mnemonic for this command class.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CmdClass::Activate => "ACT",
            CmdClass::Read => "RD",
            CmdClass::ReadAuto => "RDA",
            CmdClass::Write => "WR",
            CmdClass::WriteAuto => "WRA",
            CmdClass::Precharge => "PRE",
            CmdClass::Refresh => "REF",
        }
    }

    /// 4-bit VCD wave code (0 is reserved for "no operation").
    pub const fn vcd_code(self) -> u8 {
        match self {
            CmdClass::Activate => 1,
            CmdClass::Read => 2,
            CmdClass::ReadAuto => 3,
            CmdClass::Write => 4,
            CmdClass::WriteAuto => 5,
            CmdClass::Precharge => 6,
            CmdClass::Refresh => 7,
        }
    }

    /// Inverse of [`CmdClass::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<CmdClass> {
        CmdClass::ALL.into_iter().find(|c| c.mnemonic() == s)
    }

    /// Classifies a device command (NOP has no class: it is not an
    /// event).
    pub const fn of(cmd: &crate::SdramCmd) -> Option<CmdClass> {
        use crate::SdramCmd;
        match *cmd {
            SdramCmd::Activate { .. } => Some(CmdClass::Activate),
            SdramCmd::Read { auto_precharge, .. } => Some(if auto_precharge {
                CmdClass::ReadAuto
            } else {
                CmdClass::Read
            }),
            SdramCmd::Write { auto_precharge, .. } => Some(if auto_precharge {
                CmdClass::WriteAuto
            } else {
                CmdClass::Write
            }),
            SdramCmd::Precharge { .. } => Some(CmdClass::Precharge),
            SdramCmd::Refresh => Some(CmdClass::Refresh),
            SdramCmd::Nop => None,
        }
    }
}

/// An event one internal bank can observe: a command at the clock
/// edge, or one of its restimers expiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankEvent {
    /// A command addressed at (or covering) this bank.
    Command(CmdClass),
    /// tRCD expired: the opened row becomes readable.
    TRcdExpired,
    /// tRP expired: the precharge completed.
    TRpExpired,
    /// tRFC expired: the refresh completed.
    TRfcExpired,
}

impl BankEvent {
    /// Every event: the seven command classes plus the three timer
    /// expiries.
    pub const ALL: [BankEvent; 10] = [
        BankEvent::Command(CmdClass::Activate),
        BankEvent::Command(CmdClass::Read),
        BankEvent::Command(CmdClass::ReadAuto),
        BankEvent::Command(CmdClass::Write),
        BankEvent::Command(CmdClass::WriteAuto),
        BankEvent::Command(CmdClass::Precharge),
        BankEvent::Command(CmdClass::Refresh),
        BankEvent::TRcdExpired,
        BankEvent::TRpExpired,
        BankEvent::TRfcExpired,
    ];
}

/// Result of presenting an event to a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Transition to the given state.
    Next(BankState),
    /// The event does not apply in this state and is ignored
    /// (self-loop) — e.g. a tRP expiry while a row is open.
    Ignore,
    /// The event is illegal in this state; the tag names the violated
    /// rule or timer (matching [`IssueError`](crate::IssueError)
    /// diagnostics).
    Illegal(&'static str),
}

use BankEvent::{Command, TRcdExpired, TRfcExpired, TRpExpired};
use BankState::{Activating, Active, Idle, Precharging, Refreshing};
use CmdClass::{Activate, Precharge, Read, ReadAuto, Refresh, Write, WriteAuto};
use Outcome::{Ignore, Illegal, Next};

/// The complete transition table: one entry for every
/// (state, event) pair — 5 states x 10 events. The `pva-analysis`
/// FSM pass asserts exhaustiveness, uniqueness, reachability of every
/// state from [`Idle`], and absence of dead states.
pub const TRANSITIONS: &[(BankState, BankEvent, Outcome)] = &[
    // ---- Idle: row closed, precharge complete ----
    (Idle, Command(Activate), Next(Activating)),
    (Idle, Command(Read), Illegal("row not open")),
    (Idle, Command(ReadAuto), Illegal("row not open")),
    (Idle, Command(Write), Illegal("row not open")),
    (Idle, Command(WriteAuto), Illegal("row not open")),
    // PRECHARGE to an already-precharged bank is a legal no-op on real
    // parts.
    (Idle, Command(Precharge), Next(Idle)),
    (Idle, Command(Refresh), Next(Refreshing)),
    (Idle, TRcdExpired, Ignore),
    (Idle, TRpExpired, Ignore),
    (Idle, TRfcExpired, Ignore),
    // ---- Activating: row open, tRCD running ----
    (Activating, Command(Activate), Illegal("row already open")),
    (Activating, Command(Read), Illegal("tRCD")),
    (Activating, Command(ReadAuto), Illegal("tRCD")),
    (Activating, Command(Write), Illegal("tRCD")),
    (Activating, Command(WriteAuto), Illegal("tRCD")),
    // tRAS >= tRCD on every valid config, so a precharge here is
    // always premature.
    (Activating, Command(Precharge), Illegal("tRAS")),
    (
        Activating,
        Command(Refresh),
        Illegal("refresh requires idle banks"),
    ),
    (Activating, TRcdExpired, Next(Active)),
    (Activating, TRpExpired, Ignore),
    (Activating, TRfcExpired, Ignore),
    // ---- Active: row open and readable ----
    (Active, Command(Activate), Illegal("row already open")),
    (Active, Command(Read), Next(Active)),
    (Active, Command(ReadAuto), Next(Precharging)),
    (Active, Command(Write), Next(Active)),
    (Active, Command(WriteAuto), Next(Precharging)),
    (Active, Command(Precharge), Next(Precharging)),
    (
        Active,
        Command(Refresh),
        Illegal("refresh requires idle banks"),
    ),
    (Active, TRcdExpired, Ignore),
    (Active, TRpExpired, Ignore),
    (Active, TRfcExpired, Ignore),
    // ---- Precharging: row closed, tRP running ----
    (Precharging, Command(Activate), Illegal("tRP")),
    (Precharging, Command(Read), Illegal("row not open")),
    (Precharging, Command(ReadAuto), Illegal("row not open")),
    (Precharging, Command(Write), Illegal("row not open")),
    (Precharging, Command(WriteAuto), Illegal("row not open")),
    (Precharging, Command(Precharge), Next(Precharging)),
    (Precharging, Command(Refresh), Illegal("tRP")),
    (Precharging, TRcdExpired, Ignore),
    (Precharging, TRpExpired, Next(Idle)),
    (Precharging, TRfcExpired, Ignore),
    // ---- Refreshing: device-wide AUTO REFRESH, tRFC running ----
    (
        Refreshing,
        Command(Activate),
        Illegal("refresh in progress"),
    ),
    (Refreshing, Command(Read), Illegal("refresh in progress")),
    (
        Refreshing,
        Command(ReadAuto),
        Illegal("refresh in progress"),
    ),
    (Refreshing, Command(Write), Illegal("refresh in progress")),
    (
        Refreshing,
        Command(WriteAuto),
        Illegal("refresh in progress"),
    ),
    (
        Refreshing,
        Command(Precharge),
        Illegal("refresh in progress"),
    ),
    (Refreshing, Command(Refresh), Illegal("refresh in progress")),
    (Refreshing, TRcdExpired, Ignore),
    (Refreshing, TRpExpired, Ignore),
    (Refreshing, TRfcExpired, Next(Idle)),
];

/// Dense-index form of [`TRANSITIONS`], built at compile time so the
/// per-command lookup on the simulator's hot path is one array access
/// instead of a 50-entry scan. [`TRANSITIONS`] remains the single
/// source of truth — this is derived from it, and the `pva-analysis`
/// FSM pass plus the exhaustiveness test below guarantee every slot is
/// filled exactly once.
const DENSE: [[Outcome; BankEvent::ALL.len()]; BankState::ALL.len()] = build_dense();

const fn state_index(state: BankState) -> usize {
    match state {
        BankState::Idle => 0,
        BankState::Activating => 1,
        BankState::Active => 2,
        BankState::Precharging => 3,
        BankState::Refreshing => 4,
    }
}

const fn event_index(event: BankEvent) -> usize {
    match event {
        Command(CmdClass::Activate) => 0,
        Command(CmdClass::Read) => 1,
        Command(CmdClass::ReadAuto) => 2,
        Command(CmdClass::Write) => 3,
        Command(CmdClass::WriteAuto) => 4,
        Command(CmdClass::Precharge) => 5,
        Command(CmdClass::Refresh) => 6,
        BankEvent::TRcdExpired => 7,
        BankEvent::TRpExpired => 8,
        BankEvent::TRfcExpired => 9,
    }
}

const fn build_dense() -> [[Outcome; BankEvent::ALL.len()]; BankState::ALL.len()] {
    // The placeholder is overwritten for every slot (the table is
    // exhaustive); a surviving one would trip the uniqueness test.
    let mut dense = [[Illegal("missing table entry"); BankEvent::ALL.len()]; BankState::ALL.len()];
    let mut i = 0;
    while i < TRANSITIONS.len() {
        let (s, e, o) = TRANSITIONS[i];
        dense[state_index(s)][event_index(e)] = o;
        i += 1;
    }
    dense
}

/// Looks up the table entry for (`state`, `event`). The table is
/// exhaustive, so this only returns `None` if the table itself is
/// corrupt — which the `pva-analysis` FSM pass rules out.
pub fn transition(state: BankState, event: BankEvent) -> Option<Outcome> {
    Some(DENSE[state_index(state)][event_index(event)])
}

/// The successor state for a *legal* event: `Next` transitions move,
/// `Ignore` self-loops, `Illegal` returns `None`.
pub fn next_state(state: BankState, event: BankEvent) -> Option<BankState> {
    match transition(state, event)? {
        Outcome::Next(s) => Some(s),
        Outcome::Ignore => Some(state),
        Outcome::Illegal(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_lookup_matches_a_table_scan() {
        for s in BankState::ALL {
            for e in BankEvent::ALL {
                let scanned = TRANSITIONS
                    .iter()
                    .find(|(ts, te, _)| *ts == s && *te == e)
                    .map(|&(_, _, o)| o);
                assert_eq!(transition(s, e), scanned, "state {s:?} event {e:?}");
            }
        }
    }

    #[test]
    fn table_is_exhaustive_and_unique() {
        assert_eq!(
            TRANSITIONS.len(),
            BankState::ALL.len() * BankEvent::ALL.len()
        );
        for s in BankState::ALL {
            for e in BankEvent::ALL {
                let n = TRANSITIONS
                    .iter()
                    .filter(|(ts, te, _)| *ts == s && *te == e)
                    .count();
                assert_eq!(n, 1, "state {s:?} event {e:?} has {n} entries");
            }
        }
    }

    #[test]
    fn open_close_cycle() {
        let s = next_state(BankState::Idle, Command(CmdClass::Activate)).unwrap();
        assert_eq!(s, BankState::Activating);
        let s = next_state(s, TRcdExpired).unwrap();
        assert_eq!(s, BankState::Active);
        let s = next_state(s, Command(CmdClass::ReadAuto)).unwrap();
        assert_eq!(s, BankState::Precharging);
        let s = next_state(s, TRpExpired).unwrap();
        assert_eq!(s, BankState::Idle);
    }

    #[test]
    fn illegal_transitions_are_refused() {
        assert_eq!(next_state(BankState::Idle, Command(CmdClass::Read)), None);
        assert_eq!(
            next_state(BankState::Active, Command(CmdClass::Activate)),
            None
        );
        assert_eq!(
            next_state(BankState::Refreshing, Command(CmdClass::Activate)),
            None
        );
    }

    #[test]
    fn mnemonics_round_trip() {
        for c in CmdClass::ALL {
            assert_eq!(CmdClass::from_mnemonic(c.mnemonic()), Some(c));
        }
        assert_eq!(CmdClass::from_mnemonic("XYZ"), None);
    }

    #[test]
    fn vcd_codes_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for c in CmdClass::ALL {
            assert!(c.vcd_code() != 0);
            assert!(seen.insert(c.vcd_code()), "duplicate code {}", c.vcd_code());
        }
    }
}
