//! VCD (value-change dump) export of trace logs.
//!
//! Converts a [`TraceEvent`] log into an IEEE-1364 VCD file so runs can
//! be inspected in a waveform viewer (GTKWave etc.) — the closest
//! software equivalent of the Verilog waveforms the prototype was
//! debugged with. One 4-bit signal per bank controller encodes the
//! operation it issued each cycle; a 2-bit signal tracks the vector
//! bus.

use std::io::{self, Write};

use sdram::CmdClass;

use crate::command::OpKind;
use crate::trace_log::TraceEvent;

/// Per-bank operation encoding (one-cycle pulses): the wave codes come
/// from the shared [`CmdClass`] table, the same source the trace log
/// mnemonics use, so the two can never drift.
fn op_code(op: &str) -> u8 {
    CmdClass::from_mnemonic(op).map_or(0, CmdClass::vcd_code)
}

/// Bus activity encoding.
const BUS_IDLE: u8 = 0;
const BUS_REQUEST: u8 = 1;
const BUS_STAGE_READ: u8 = 2;
const BUS_STAGE_WRITE: u8 = 3;

/// Writes `events` as a VCD document with one signal per bank plus a
/// bus signal. `banks` is the bank-controller count (signals are
/// emitted for banks `0..banks` even if idle throughout).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Examples
///
/// ```
/// use pva_core::Vector;
/// use pva_sim::{write_vcd, HostRequest, PvaConfig, PvaUnit};
///
/// let cfg = PvaConfig { record_trace: true, ..PvaConfig::default() };
/// let mut unit = PvaUnit::new(cfg)?;
/// unit.run(vec![HostRequest::Read { vector: Vector::new(0, 4, 32)? }])?;
/// let mut vcd = Vec::new();
/// write_vcd(&unit.take_events(), 16, &mut vcd).expect("in-memory write");
/// let text = String::from_utf8(vcd).expect("ascii");
/// assert!(text.starts_with("$date"));
/// assert!(text.contains("$var wire 4 !00 bank0_op $end"));
/// # Ok::<(), pva_core::PvaError>(())
/// ```
pub fn write_vcd<W: Write>(events: &[TraceEvent], banks: usize, mut w: W) -> io::Result<()> {
    writeln!(w, "$date reproduced-pva-run $end")?;
    writeln!(w, "$version pva-sim trace export $end")?;
    writeln!(w, "$timescale 10ns $end")?; // one 100 MHz cycle
    writeln!(w, "$scope module pva $end")?;
    for b in 0..banks {
        writeln!(w, "$var wire 4 !{b:02} bank{b}_op $end")?;
    }
    writeln!(w, "$var wire 2 !bus vector_bus $end")?;
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;

    // Build per-cycle changes: (cycle, signal, value). Events are
    // one-cycle pulses: value at `cycle`, reset at `cycle + 1`.
    let mut changes: Vec<(u64, String, u8)> = Vec::new();
    for e in events {
        match e {
            TraceEvent::BankOp {
                cycle, bank, op, ..
            } => {
                changes.push((*cycle, format!("!{bank:02}"), op_code(op)));
                changes.push((*cycle + 1, format!("!{bank:02}"), 0));
            }
            TraceEvent::Broadcast { cycle, .. } => {
                changes.push((*cycle, "!bus".into(), BUS_REQUEST));
                changes.push((*cycle + 1, "!bus".into(), BUS_IDLE));
            }
            TraceEvent::StageStart { cycle, kind, .. } => {
                let v = match kind {
                    OpKind::Read => BUS_STAGE_READ,
                    OpKind::Write => BUS_STAGE_WRITE,
                };
                changes.push((*cycle, "!bus".into(), v));
                changes.push((*cycle + 1, "!bus".into(), BUS_IDLE));
            }
            TraceEvent::Completed { .. } => {}
        }
    }
    changes.sort_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)));

    // Initial values.
    writeln!(w, "$dumpvars")?;
    for b in 0..banks {
        writeln!(w, "b0 !{b:02}")?;
    }
    writeln!(w, "b0 !bus")?;
    writeln!(w, "$end")?;

    let mut current_time = None;
    // Within one timestamp, the last change to a signal wins (a pulse
    // overwritten by a new op in the same cycle stays the new op).
    let mut i = 0;
    while i < changes.len() {
        let t = changes[i].0;
        if current_time != Some(t) {
            writeln!(w, "#{t}")?;
            current_time = Some(t);
        }
        // Deduplicate per signal at this timestamp, keeping the
        // non-zero (pulse) value when both a reset and a new pulse land.
        let mut j = i;
        while j < changes.len() && changes[j].0 == t {
            j += 1;
        }
        let slice = &changes[i..j];
        let mut emitted: Vec<&str> = Vec::new();
        for (_, sig, _) in slice {
            if emitted.contains(&sig.as_str()) {
                continue;
            }
            emitted.push(sig);
            let value = slice
                .iter()
                .filter(|(_, s, _)| s == sig)
                .map(|&(_, _, v)| v)
                .max()
                .expect("nonempty");
            writeln!(w, "b{value:b} {sig}")?;
        }
        i = j;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::TxnId;
    use pva_core::Vector;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Broadcast {
                cycle: 0,
                txn: TxnId(0),
                vector: Vector::new(0, 4, 8).unwrap(),
                kind: OpKind::Read,
            },
            TraceEvent::BankOp {
                cycle: 2,
                bank: 0,
                op: "ACT",
                internal_bank: 0,
                row: 0,
            },
            TraceEvent::BankOp {
                cycle: 4,
                bank: 0,
                op: "RD",
                internal_bank: 0,
                row: 0,
            },
            TraceEvent::StageStart {
                cycle: 9,
                txn: TxnId(0),
                kind: OpKind::Read,
            },
            TraceEvent::Completed {
                cycle: 20,
                txn: TxnId(0),
                request_index: 0,
            },
        ]
    }

    #[test]
    fn header_and_signals_present() {
        let mut out = Vec::new();
        write_vcd(&sample_events(), 4, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$enddefinitions"));
        for b in 0..4 {
            assert!(text.contains(&format!("bank{b}_op")));
        }
        assert!(text.contains("vector_bus"));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let mut out = Vec::new();
        write_vcd(&sample_events(), 4, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let times: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l[1..].parse().unwrap())
            .collect();
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn pulses_set_and_reset() {
        let mut out = Vec::new();
        write_vcd(&sample_events(), 1, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // ACT = 1 at cycle 2, reset at 3.
        let idx_set = text.find("#2\n").unwrap();
        let after = &text[idx_set..];
        assert!(after.contains("b1 !00"));
        let idx_reset = text.find("#3\n").unwrap();
        assert!(text[idx_reset..].contains("b0 !00"));
    }

    #[test]
    fn back_to_back_ops_keep_the_pulse() {
        // RD at cycle 4 and cycle 5: the reset from cycle 4's pulse must
        // not mask cycle 5's value.
        let events = vec![
            TraceEvent::BankOp {
                cycle: 4,
                bank: 0,
                op: "RD",
                internal_bank: 0,
                row: 0,
            },
            TraceEvent::BankOp {
                cycle: 5,
                bank: 0,
                op: "RD",
                internal_bank: 0,
                row: 0,
            },
        ];
        let mut out = Vec::new();
        write_vcd(&events, 1, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let at5 = text.find("#5\n").unwrap();
        let next = text[at5..].lines().nth(1).unwrap();
        assert_eq!(next, "b10 !00", "RD (2) wins over the reset at cycle 5");
    }
}
