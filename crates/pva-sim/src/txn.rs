//! Split-transaction bookkeeping.
//!
//! The paper's BC bus carries eight *transaction-complete* indication
//! lines, wired-OR driven by the staging units: a line deasserts when
//! every bank controller has serviced its part of the transaction
//! (§5.2.2 "Staging Units", §5.2.6). [`TransactionTable`] centralizes
//! that state: bank controllers deposit gathered words / report
//! committed writes, and the front end watches for completion.

use std::sync::Arc;

use crate::command::{OpKind, TxnId};

/// Lifecycle of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnPhase {
    /// Banks are gathering (read) or scattering (write).
    InBanks,
    /// All banks done; a read is waiting for STAGE_READ.
    ReadyToStage,
    /// STAGE_READ in progress on the bus.
    Staging,
    /// Fully complete; id reusable.
    Done,
}

/// State of one outstanding transaction.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Direction.
    pub kind: OpKind,
    /// Vector length in elements.
    pub length: u64,
    /// Request index (submission order) this transaction serves.
    pub request_index: usize,
    /// Cycle the vector command was broadcast.
    pub issued_at: u64,
    /// Gathered words by element index (reads).
    pub collected: Vec<Option<u64>>,
    /// Number of elements gathered so far.
    pub collected_count: u64,
    /// Number of elements committed to SDRAM so far (writes).
    pub committed_count: u64,
    /// Dense line to scatter (writes), shared with every bank
    /// controller's register file.
    pub write_line: Option<Arc<Vec<u64>>>,
    /// Element indices whose data is known bad: ECC-uncorrectable (or
    /// dead-bank) reads that exhausted their retries. The words are
    /// deposited so the transaction completes, but the completion
    /// carries this list so the host never trusts them silently.
    pub faulted: Vec<u64>,
    /// Current phase.
    pub phase: TxnPhase,
}

impl Transaction {
    /// Whether every element has been gathered / committed by the banks.
    pub fn banks_done(&self) -> bool {
        match self.kind {
            OpKind::Read => self.collected_count == self.length,
            OpKind::Write => self.committed_count == self.length,
        }
    }

    /// The gathered dense line, once complete.
    ///
    /// # Panics
    ///
    /// Panics if called before all elements arrived or on a write
    /// transaction.
    pub fn line(&self) -> Vec<u64> {
        assert_eq!(self.kind, OpKind::Read, "only reads gather a line");
        self.collected
            .iter()
            .map(|w| w.expect("all elements collected"))
            .collect()
    }
}

/// The table of outstanding transactions, indexed by [`TxnId`].
/// `Clone` exists for the debug-build wake-soundness oracle.
#[derive(Debug, Clone, Default)]
pub struct TransactionTable {
    slots: Vec<Option<Transaction>>,
    /// Open-slot count, maintained incrementally (mirrors what a scan
    /// of `slots` would find).
    open: usize,
    /// Sum of `collected_count + committed_count` over the *open*
    /// transactions, maintained incrementally: deposits and commits add,
    /// closing a transaction removes its contribution.
    moved: u64,
    /// Number of open transactions whose banks have finished (last
    /// element deposited or committed) but whose phase transition has
    /// not been handled yet — lets the per-cycle completion scan prove
    /// itself empty in O(1).
    banks_done: usize,
}

impl TransactionTable {
    /// Creates a table with `ids` transaction slots.
    pub fn new(ids: usize) -> Self {
        TransactionTable {
            slots: (0..ids).map(|_| None).collect(),
            open: 0,
            moved: 0,
            banks_done: 0,
        }
    }

    /// A free transaction id, if any.
    pub fn free_id(&self) -> Option<TxnId> {
        self.slots
            .iter()
            .position(|s| s.is_none())
            .map(|i| TxnId(i as u8))
    }

    /// Opens a transaction in slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied.
    pub fn open(&mut self, id: TxnId, txn: Transaction) {
        let slot = &mut self.slots[id.0 as usize];
        assert!(slot.is_none(), "transaction {id} already open");
        self.moved += txn.collected_count + txn.committed_count;
        self.open += 1;
        *slot = Some(txn);
    }

    /// The transaction in slot `id`, if open.
    pub fn get(&self, id: TxnId) -> Option<&Transaction> {
        self.slots[id.0 as usize].as_ref()
    }

    /// Mutable access to the transaction in slot `id`.
    pub fn get_mut(&mut self, id: TxnId) -> Option<&mut Transaction> {
        self.slots[id.0 as usize].as_mut()
    }

    /// Deposits a gathered word (bank controllers call this when SDRAM
    /// data returns).
    ///
    /// # Panics
    ///
    /// Panics on double deposit or an unknown transaction — both would
    /// be hardware bugs, not recoverable conditions.
    pub fn deposit(&mut self, id: TxnId, element: u64, data: u64) {
        let txn = self.slots[id.0 as usize]
            .as_mut()
            .expect("deposit into open transaction");
        let slot = &mut txn.collected[element as usize];
        assert!(slot.is_none(), "element {element} deposited twice");
        *slot = Some(data);
        txn.collected_count += 1;
        self.moved += 1;
        if txn.collected_count == txn.length {
            self.banks_done += 1;
        }
    }

    /// Deposits a gathered word that is known bad (retries exhausted on
    /// a poisoned read): the element still completes — the alternative
    /// is a transaction that never finishes — but is recorded in the
    /// transaction's `faulted` list for the completion to carry.
    ///
    /// # Panics
    ///
    /// Panics on double deposit or an unknown transaction, like
    /// [`TransactionTable::deposit`].
    pub fn deposit_faulted(&mut self, id: TxnId, element: u64, data: u64) {
        self.deposit(id, element, data);
        let txn = self.slots[id.0 as usize]
            .as_mut()
            .expect("deposit into open transaction");
        txn.faulted.push(element);
    }

    /// Records `count` committed write elements.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is unknown.
    pub fn commit_writes(&mut self, id: TxnId, count: u64) {
        let txn = self.slots[id.0 as usize]
            .as_mut()
            .expect("commit into open transaction");
        txn.committed_count += count;
        self.moved += count;
        debug_assert!(txn.committed_count <= txn.length);
        if count > 0 && txn.committed_count == txn.length {
            self.banks_done += 1;
        }
    }

    /// Closes slot `id`, returning the finished transaction.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn close(&mut self, id: TxnId) -> Transaction {
        let txn = self.slots[id.0 as usize]
            .take()
            .expect("closing an open transaction");
        self.open -= 1;
        self.moved -= txn.collected_count + txn.committed_count;
        txn
    }

    /// Iterates over open transactions.
    pub fn iter_open(&self) -> impl Iterator<Item = (TxnId, &Transaction)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (TxnId(i as u8), t)))
    }

    /// Number of open transactions.
    pub fn open_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Open transactions whose banks finished but whose phase
    /// transition is still pending — `0` proves the per-cycle
    /// completion scan would find nothing.
    pub fn banks_done_count(&self) -> usize {
        self.banks_done
    }

    /// Records that `n` finished-in-banks transactions had their phase
    /// transition handled (called by the completion scan).
    pub fn consume_banks_done(&mut self, n: usize) {
        debug_assert!(n <= self.banks_done);
        self.banks_done -= n;
    }

    /// O(1) progress counters `(open, moved)`: the open-transaction
    /// count and the summed `collected_count + committed_count` over
    /// them — exactly what a scan would compute, maintained
    /// incrementally for the fast-path watchdog fingerprint.
    pub fn progress_counters(&self) -> (usize, u64) {
        debug_assert_eq!(self.open, self.open_count());
        debug_assert_eq!(
            self.moved,
            self.iter_open()
                .map(|(_, t)| t.collected_count + t.committed_count)
                .sum::<u64>()
        );
        (self.open, self.moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_txn(len: u64) -> Transaction {
        Transaction {
            kind: OpKind::Read,
            length: len,
            request_index: 0,
            issued_at: 0,
            collected: vec![None; len as usize],
            collected_count: 0,
            committed_count: 0,
            write_line: None,
            faulted: Vec::new(),
            phase: TxnPhase::InBanks,
        }
    }

    #[test]
    fn faulted_deposit_completes_but_is_recorded() {
        let mut t = TransactionTable::new(1);
        t.open(TxnId(0), read_txn(2));
        t.deposit(TxnId(0), 0, 10);
        t.deposit_faulted(TxnId(0), 1, 0xBAD);
        let txn = t.get(TxnId(0)).unwrap();
        assert!(txn.banks_done());
        assert_eq!(txn.faulted, vec![1]);
    }

    #[test]
    fn allocate_and_free() {
        let mut t = TransactionTable::new(2);
        let a = t.free_id().unwrap();
        t.open(a, read_txn(4));
        let b = t.free_id().unwrap();
        assert_ne!(a, b);
        t.open(b, read_txn(4));
        assert!(t.free_id().is_none());
        t.close(a);
        assert_eq!(t.free_id(), Some(a));
        assert_eq!(t.open_count(), 1);
    }

    #[test]
    fn deposit_completes_read() {
        let mut t = TransactionTable::new(1);
        t.open(TxnId(0), read_txn(3));
        for i in 0..3 {
            assert!(!t.get(TxnId(0)).unwrap().banks_done());
            t.deposit(TxnId(0), i, 100 + i);
        }
        let txn = t.get(TxnId(0)).unwrap();
        assert!(txn.banks_done());
        assert_eq!(txn.line(), vec![100, 101, 102]);
    }

    #[test]
    #[should_panic(expected = "deposited twice")]
    fn double_deposit_panics() {
        let mut t = TransactionTable::new(1);
        t.open(TxnId(0), read_txn(2));
        t.deposit(TxnId(0), 0, 1);
        t.deposit(TxnId(0), 0, 2);
    }

    #[test]
    fn write_commit_counting() {
        let mut t = TransactionTable::new(1);
        let mut txn = read_txn(5);
        txn.kind = OpKind::Write;
        t.open(TxnId(0), txn);
        t.commit_writes(TxnId(0), 3);
        assert!(!t.get(TxnId(0)).unwrap().banks_done());
        t.commit_writes(TxnId(0), 2);
        assert!(t.get(TxnId(0)).unwrap().banks_done());
    }
}
