//! Vector-bus commands and transactions.

use pva_core::Vector;

/// Split-transaction identifier on the vector bus (three bits in the
/// prototype: eight outstanding transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u8);

impl core::fmt::Display for TxnId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Direction of a vector operation. Also used as the data-bus polarity
/// of §5.2.4/§5.2.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Gathered vector read (`VEC_READ`).
    Read,
    /// Scattered vector write (`VEC_WRITE`).
    Write,
}

/// A vector command as broadcast on the vector bus during a request
/// cycle: base, stride, length, transaction id and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorCommand {
    /// The base-stride vector to gather or scatter.
    pub vector: Vector,
    /// Read or write.
    pub kind: OpKind,
    /// Split-transaction id.
    pub txn: TxnId,
}

/// A request submitted by the host (memory-controller front end) to the
/// PVA unit — what the infinitely-fast CPU of §6.2 produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostRequest {
    /// Gather `vector` into a dense line.
    Read {
        /// Vector to gather.
        vector: Vector,
    },
    /// Scatter `data` (one word per element) to `vector`'s addresses.
    Write {
        /// Vector to scatter to.
        vector: Vector,
        /// Dense line of `vector.length()` words.
        data: Vec<u64>,
    },
}

impl HostRequest {
    /// The vector being accessed.
    pub fn vector(&self) -> &Vector {
        match self {
            HostRequest::Read { vector } | HostRequest::Write { vector, .. } => vector,
        }
    }

    /// Read/write direction.
    pub fn kind(&self) -> OpKind {
        match self {
            HostRequest::Read { .. } => OpKind::Read,
            HostRequest::Write { .. } => OpKind::Write,
        }
    }
}

/// Outcome of one completed host request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Index of the request in submission order.
    pub request_index: usize,
    /// Cycle the request's vector-bus command was broadcast.
    pub issued_at: u64,
    /// Cycle the transaction fully completed (data staged / committed).
    pub completed_at: u64,
    /// For reads: the gathered dense line, in element order.
    pub data: Option<Vec<u64>>,
    /// Element indices of `data` whose words are known bad (ECC
    /// detected an uncorrectable error and retries were exhausted).
    /// Empty on a healthy read and on writes.
    pub faulted: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_request_accessors() {
        let v = Vector::new(0, 4, 8).unwrap();
        let r = HostRequest::Read { vector: v };
        assert_eq!(r.kind(), OpKind::Read);
        assert_eq!(r.vector(), &v);
        let w = HostRequest::Write {
            vector: v,
            data: vec![0; 8],
        };
        assert_eq!(w.kind(), OpKind::Write);
    }

    #[test]
    fn txn_display() {
        assert_eq!(TxnId(3).to_string(), "t3");
    }
}
