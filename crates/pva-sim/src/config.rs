//! Configuration of the PVA unit model.

use pva_core::Geometry;
use sdram::{DevicePreset, SdramConfig};

/// Row-management predictor policy (§5.2.2 "Row Management Algorithm").
///
/// The paper's one-bit `autoprecharge_predictor` is set "to one if the
/// row that \[was\] open last within the internal bank matches the row of
/// the address of the first vector element", and a set predictor votes to
/// close the row when a request completes. Read literally, that closes
/// rows exactly when consecutive requests *reuse* them, which defeats the
/// stated goal ("if the next access is likely to be to the same row, then
/// it is better to leave that row open"); we believe the prose inverted
/// the condition. Both readings are provided — plus always-close /
/// always-open bounds — and the `ablation_scheduler` bench quantifies the
/// difference. The default is [`RowPolicy::MissPredictsClose`], the
/// reading consistent with the paper's stated intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowPolicy {
    /// Predictor = 1 (close) when the previously-open row *missed* the
    /// new request's first row: repeat-miss patterns close eagerly,
    /// repeat-hit patterns keep rows open. The intent-consistent reading.
    #[default]
    MissPredictsClose,
    /// Predictor = 1 (close) when the previously-open row *matched* the
    /// new request's first row — the paper's pseudo-code taken verbatim.
    PaperLiteral,
    /// Always auto-precharge after the last access of a request
    /// (closed-page policy).
    AlwaysClose,
    /// Never auto-precharge on request completion (open-page policy).
    AlwaysOpen,
    /// The Alpha 21174 scheme (§2.4.1): a four-bit hit/miss history per
    /// internal bank indexes a software-set 16-bit precharge policy
    /// register ([`SchedulerOptions::precharge_policy_reg`]); the
    /// indexed bit decides whether to close the row.
    AlphaHistory,
}

/// Feature switches for the §5.2 scheduler, used by the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerOptions {
    /// Allow younger vector contexts to issue when older ones are
    /// blocked (the out-of-order heuristic of §5.2.2). When disabled,
    /// only the oldest context may issue reads/writes.
    pub out_of_order: bool,
    /// Promote row activates/precharges of blocked contexts above reads
    /// and writes when they do not conflict with rows in use ("opening
    /// rows as early as possible").
    pub promote_opens: bool,
    /// Enable the FHP -> VC and FHC -> VC bypass paths of §5.2.3 that
    /// skip the request FIFO when the controller is idle.
    pub bypass_paths: bool,
    /// Row-management predictor.
    pub row_policy: RowPolicy,
    /// The 21174-style 16-bit precharge policy register used by
    /// [`RowPolicy::AlphaHistory`]: bit `h` set means "precharge after
    /// this request" when the four-bit hit history equals `h` (1 = hit,
    /// most recent in the low bit).
    pub precharge_policy_reg: u16,
    /// Generation-aware issue policy for parts that declare channel
    /// constraints (bank groups, tCCD_L/tCCD_S, tFAW) or a burst length
    /// above one: prefer CAS candidates whose bank group differs from
    /// the last CAS (the short tCCD_S gate applies instead of tCCD_L),
    /// defer an ACTIVATE that would burn the last tFAW slot while a CAS
    /// is ready to go, and coalesce adjacent same-row elements into one
    /// CAS burst. Provably inert on 1-group, burst-length-1 parts (the
    /// SDR-era presets): every decision point degenerates to the
    /// arrival-order policy, which the golden-identity tests pin.
    pub generation_aware: bool,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            out_of_order: true,
            promote_opens: true,
            bypass_paths: true,
            row_policy: RowPolicy::default(),
            precharge_policy_reg: default_precharge_policy(),
            generation_aware: true,
        }
    }
}

/// The default 21174-style policy register: close the row when at most
/// two of the last four requests hit it (majority-miss heuristic).
pub const fn default_precharge_policy() -> u16 {
    let mut reg = 0u16;
    let mut h = 0u16;
    while h < 16 {
        let hits = h.count_ones();
        if hits <= 2 {
            reg |= 1 << h;
        }
        h += 1;
    }
    reg
}

/// Full configuration of the PVA unit.
///
/// Defaults are the paper's prototype (§5.1): 16 word-interleaved
/// 32-bit SDRAM banks, 128-byte L2 lines (32-word vector commands), 8
/// outstanding bus transactions, 4 vector contexts per bank controller,
/// a 2-cycle multiply-add in the first-hit calculate module, and 2
/// words per cycle on the 128-bit BC bus.
///
/// # Examples
///
/// ```
/// use pva_sim::PvaConfig;
/// let cfg = PvaConfig::default();
/// assert_eq!(cfg.geometry.banks(), 16);
/// assert_eq!(cfg.line_words, 32);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PvaConfig {
    /// Bank geometry. Word-interleaved geometries use one K1 PLA per
    /// bank controller; block/cache-line interleaved ones instantiate
    /// `N` logical first-hit units per controller (§4.3.1). Bank widths
    /// above one word are rejected — model wide banks as more banks.
    pub geometry: Geometry,
    /// Vector command length limit in words (one L2 cache line).
    pub line_words: u64,
    /// Outstanding split-transaction IDs on the vector bus.
    pub transaction_ids: usize,
    /// Vector contexts per bank controller.
    pub vector_contexts: usize,
    /// Request FIFO / register file entries per bank controller.
    pub request_fifo_entries: usize,
    /// Latency of the FHC multiply-add for non-power-of-two strides
    /// (cycles). The synthesized prototype needed two cycles at 100 MHz.
    pub fhc_latency: u32,
    /// Words transferred per cycle during STAGE_READ / STAGE_WRITE on
    /// the BC bus (two 64-bit halves of the 128-bit bus).
    pub stage_words_per_cycle: u64,
    /// Dead cycles when the data-bus direction reverses (§5.2.5).
    pub turnaround_cycles: u32,
    /// SDRAM device timing.
    pub sdram: SdramConfig,
    /// Scheduler feature switches.
    pub options: SchedulerOptions,
    /// Record a cycle-stamped [`TraceEvent`](crate::TraceEvent) log
    /// retrievable via [`PvaUnit::take_events`](crate::PvaUnit::take_events).
    pub record_trace: bool,
    /// Cycles without any transaction forward progress before
    /// [`step`](crate::PvaUnit::step) / [`run`](crate::PvaUnit::run)
    /// abort with [`PvaError::Watchdog`](pva_core::PvaError::Watchdog).
    /// `0` disables the watchdog.
    pub watchdog_cycles: u64,
    /// How many times a bank controller re-reads an element whose data
    /// came back poisoned (uncorrectable ECC error or dead bank) before
    /// giving up and flagging the element in the completion.
    pub max_read_retries: u32,
    /// Base backoff before a retry re-issues, in cycles; doubles each
    /// attempt (clamped), spreading retries away from the disturbance
    /// that poisoned the data.
    pub retry_backoff_cycles: u32,
    /// Graceful degradation: when the device reports a hard-failed
    /// internal bank, remap its rows into a healthy neighbour bank
    /// (serializing the two banks' subvector accesses through one row
    /// buffer) instead of poisoning every access.
    pub degradation: bool,
    /// Simulator (not hardware) switch: enable the next-event fast path
    /// — quiescent cycles are jumped in bulk instead of ticked one by
    /// one, and per-cycle scratch buffers are reused instead of
    /// reallocated. Cycle counts and statistics are identical either
    /// way (the equivalence tests prove it); `false` keeps the plain
    /// reference model for cross-checking and throughput baselines.
    pub fast_sim: bool,
}

impl Default for PvaConfig {
    fn default() -> Self {
        PvaConfig {
            geometry: Geometry::default(),
            line_words: 32,
            transaction_ids: 8,
            vector_contexts: 4,
            request_fifo_entries: 8,
            fhc_latency: 2,
            stage_words_per_cycle: 2,
            turnaround_cycles: 1,
            sdram: SdramConfig::default(),
            options: SchedulerOptions::default(),
            record_trace: false,
            watchdog_cycles: 1_000_000,
            max_read_retries: 4,
            retry_backoff_cycles: 8,
            degradation: true,
            fast_sim: true,
        }
    }
}

impl PvaConfig {
    /// The prototype configuration with SRAM-like memory behind the same
    /// parallel-access front end: single-cycle uniform access, no
    /// activate/precharge costs. Used for the "PVA SRAM" comparator of
    /// §6.1.
    pub fn sram_backend() -> Self {
        PvaConfig {
            sdram: SdramConfig::for_device(DevicePreset::SramLike),
            ..PvaConfig::default()
        }
    }

    /// A Command Vector Memory System-like configuration (§3.1 related
    /// work): the same broadcast design, but subcommand generation for
    /// non-power-of-two strides takes ~15 memory cycles (the paper:
    /// "the authors state that for strides that are not powers of two,
    /// 15 memory cycles are required to generate the subcommands"),
    /// versus the PVA's at most five. Power-of-two strides take two
    /// cycles in both designs.
    pub fn cvms_like() -> Self {
        PvaConfig {
            fhc_latency: 13, // 1 (predict) + 13 + 1 (inject) ~= 15 cycles
            ..PvaConfig::default()
        }
    }

    /// Checks every unit-level consistency rule (plus the nested SDRAM
    /// rules) and returns all violations.
    ///
    /// Like [`SdramConfig::check`], the same pass runs at construction
    /// ([`PvaUnit::new`](crate::PvaUnit::new)), in the `pva-analysis`
    /// binary, and in the property tests.
    pub fn check(&self) -> Vec<PvaConfigError> {
        let mut errs: Vec<PvaConfigError> = self
            .sdram
            .check()
            .into_iter()
            .map(PvaConfigError::Sdram)
            .collect();
        if self.transaction_ids == 0 {
            errs.push(PvaConfigError::NoTransactionIds);
        }
        if self.transaction_ids > 256 {
            // TxnId is a u8 on the modeled vector bus.
            errs.push(PvaConfigError::TooManyTransactionIds(self.transaction_ids));
        }
        if self.request_fifo_entries < self.transaction_ids {
            // The per-bank register file is indexed by transaction ID;
            // the §5.2.3 flow-control argument (a slot per outstanding
            // transaction means the FIFO can never overflow) needs one
            // entry per ID.
            errs.push(PvaConfigError::FifoSmallerThanTransactionIds {
                fifo: self.request_fifo_entries,
                txns: self.transaction_ids,
            });
        }
        if self.vector_contexts == 0 {
            errs.push(PvaConfigError::NoVectorContexts);
        }
        if self.line_words == 0 {
            errs.push(PvaConfigError::ZeroLineWords);
        }
        if !self.stage_words_per_cycle.is_power_of_two() {
            // The BC bus moves a power-of-two number of words per beat
            // (two 64-bit halves of the 128-bit bus); the staging
            // cycle counters divide by it, which must stay a shift.
            errs.push(PvaConfigError::StageWordsNotPowerOfTwo(
                self.stage_words_per_cycle,
            ));
        }
        if self.fhc_latency == 0 {
            errs.push(PvaConfigError::ZeroFhcLatency);
        }
        if self.max_read_retries > 0 && self.retry_backoff_cycles == 0 {
            // The retry timer reloads from this value; a zero reload
            // re-issues the failed read on the very next cycle, which
            // defeats the point of backing off past a disturbance.
            errs.push(PvaConfigError::ZeroRetryBackoff);
        }
        errs
    }

    /// Validates the configuration, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first [`PvaConfigError`] from [`PvaConfig::check`].
    pub fn validate(&self) -> Result<(), PvaConfigError> {
        match self.check().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A violation of the [`PvaConfig`] consistency rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvaConfigError {
    /// The nested [`SdramConfig`] failed its own consistency check.
    Sdram(sdram::ConfigError),
    /// `transaction_ids` must be at least 1.
    NoTransactionIds,
    /// `transaction_ids` must fit the 8-bit transaction-ID field of the
    /// modeled split-transaction bus (at most 256).
    TooManyTransactionIds(usize),
    /// `request_fifo_entries` must be at least `transaction_ids`: the
    /// §5.2.3 flow-control argument sizes the per-bank register file so
    /// one slot exists per outstanding transaction.
    FifoSmallerThanTransactionIds {
        /// Configured `request_fifo_entries`.
        fifo: usize,
        /// Configured `transaction_ids`.
        txns: usize,
    },
    /// `vector_contexts` must be at least 1.
    NoVectorContexts,
    /// `line_words` must be at least 1.
    ZeroLineWords,
    /// `stage_words_per_cycle` must be a nonzero power of two: the
    /// staging cycle counters divide transfer lengths by it, and that
    /// division must reduce to a shift in hardware.
    StageWordsNotPowerOfTwo(u64),
    /// `fhc_latency` must be at least 1: the FHC multiply-add cannot
    /// produce its result in the cycle the operands arrive.
    ZeroFhcLatency,
    /// `retry_backoff_cycles` must be at least 1 when read retries are
    /// enabled: the retry timer reloads from it.
    ZeroRetryBackoff,
}

impl PvaConfigError {
    /// A static one-line description of the violated rule, used to build
    /// the [`PvaError::InvalidConfig`](pva_core::PvaError::InvalidConfig)
    /// payload at construction time.
    pub const fn rule(&self) -> &'static str {
        match self {
            PvaConfigError::Sdram(_) => "SDRAM timing/geometry parameters are inconsistent",
            PvaConfigError::NoTransactionIds => "transaction_ids must be at least 1",
            PvaConfigError::TooManyTransactionIds(_) => {
                "transaction_ids exceeds the 8-bit bus transaction-ID field"
            }
            PvaConfigError::FifoSmallerThanTransactionIds { .. } => {
                "request FIFO smaller than transaction IDs"
            }
            PvaConfigError::NoVectorContexts => "vector_contexts must be at least 1",
            PvaConfigError::ZeroLineWords => "line_words must be at least 1",
            PvaConfigError::StageWordsNotPowerOfTwo(_) => {
                "stage_words_per_cycle must be a nonzero power of two"
            }
            PvaConfigError::ZeroFhcLatency => "fhc_latency must be at least 1",
            PvaConfigError::ZeroRetryBackoff => {
                "retry_backoff_cycles must be at least 1 when retries are enabled"
            }
        }
    }
}

impl core::fmt::Display for PvaConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            PvaConfigError::Sdram(e) => write!(f, "sdram: {e}"),
            PvaConfigError::TooManyTransactionIds(n) => {
                write!(
                    f,
                    "transaction_ids = {n} exceeds the 8-bit ID field (max 256)"
                )
            }
            PvaConfigError::FifoSmallerThanTransactionIds { fifo, txns } => {
                write!(
                    f,
                    "request_fifo_entries = {fifo} is smaller than transaction_ids = {txns}"
                )
            }
            PvaConfigError::StageWordsNotPowerOfTwo(n) => {
                write!(
                    f,
                    "stage_words_per_cycle = {n} is not a nonzero power of two"
                )
            }
            ref other => f.write_str(other.rule()),
        }
    }
}

impl std::error::Error for PvaConfigError {}

impl From<sdram::ConfigError> for PvaConfigError {
    fn from(e: sdram::ConfigError) -> Self {
        PvaConfigError::Sdram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_prototype() {
        let c = PvaConfig::default();
        assert_eq!(c.geometry.banks(), 16);
        assert_eq!(c.transaction_ids, 8);
        assert_eq!(c.vector_contexts, 4);
        assert_eq!(c.fhc_latency, 2);
        assert_eq!(c.stage_words_per_cycle, 2);
    }

    #[test]
    fn sram_backend_removes_dram_latencies() {
        let c = PvaConfig::sram_backend();
        assert_eq!(c.sdram.t_rcd, 0);
        assert_eq!(c.sdram.t_rp, 0);
        assert_eq!(c.sdram.t_cas, 1);
    }

    #[test]
    fn row_policy_default_is_intent_consistent() {
        assert_eq!(RowPolicy::default(), RowPolicy::MissPredictsClose);
    }

    #[test]
    fn all_presets_validate_clean() {
        for (name, cfg) in [
            ("default", PvaConfig::default()),
            ("sram_backend", PvaConfig::sram_backend()),
            ("cvms_like", PvaConfig::cvms_like()),
        ] {
            assert_eq!(cfg.check(), vec![], "preset {name} must be consistent");
        }
    }

    #[test]
    fn unit_rules_fire_on_minimal_violations() {
        let cases: Vec<(PvaConfig, PvaConfigError)> = vec![
            (
                PvaConfig {
                    transaction_ids: 0,
                    ..PvaConfig::default()
                },
                PvaConfigError::NoTransactionIds,
            ),
            (
                PvaConfig {
                    transaction_ids: 257,
                    request_fifo_entries: 257,
                    ..PvaConfig::default()
                },
                PvaConfigError::TooManyTransactionIds(257),
            ),
            (
                PvaConfig {
                    request_fifo_entries: 4,
                    ..PvaConfig::default()
                },
                PvaConfigError::FifoSmallerThanTransactionIds { fifo: 4, txns: 8 },
            ),
            (
                PvaConfig {
                    vector_contexts: 0,
                    ..PvaConfig::default()
                },
                PvaConfigError::NoVectorContexts,
            ),
            (
                PvaConfig {
                    line_words: 0,
                    ..PvaConfig::default()
                },
                PvaConfigError::ZeroLineWords,
            ),
            (
                PvaConfig {
                    stage_words_per_cycle: 0,
                    ..PvaConfig::default()
                },
                PvaConfigError::StageWordsNotPowerOfTwo(0),
            ),
            (
                PvaConfig {
                    stage_words_per_cycle: 3,
                    ..PvaConfig::default()
                },
                PvaConfigError::StageWordsNotPowerOfTwo(3),
            ),
            (
                PvaConfig {
                    fhc_latency: 0,
                    ..PvaConfig::default()
                },
                PvaConfigError::ZeroFhcLatency,
            ),
            (
                PvaConfig {
                    retry_backoff_cycles: 0,
                    ..PvaConfig::default()
                },
                PvaConfigError::ZeroRetryBackoff,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.check(), vec![want]);
        }
    }

    #[test]
    fn sdram_violations_surface_through_unit_check() {
        let cfg = PvaConfig {
            sdram: sdram::SdramConfig {
                internal_banks: 3,
                ..sdram::SdramConfig::default()
            },
            ..PvaConfig::default()
        };
        assert_eq!(
            cfg.check(),
            vec![PvaConfigError::Sdram(
                sdram::ConfigError::InternalBanksNotPowerOfTwo(3)
            )]
        );
    }
}
