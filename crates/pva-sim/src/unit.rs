//! The PVA unit: vector bus + 16 bank controllers + front-end driver.
//!
//! Models the shared split-transaction Vector Bus of §5.2.1 and the
//! overall operation of §5.2.6:
//!
//! * a **request cycle** broadcasts `VEC_READ`/`VEC_WRITE` (base, stride,
//!   transaction id) to every bank controller at once;
//! * **data cycles** move the dense line between the front end and the
//!   staging units — 2 words per cycle on the 128-bit BC bus (alternate
//!   64-bit halves, avoiding turnaround), so a 32-word line stages in 16
//!   cycles;
//! * eight **transaction-complete lines** (modelled by the
//!   [`TransactionTable`]) tell the front end when a gather finished or
//!   a scatter committed;
//! * reads: `VEC_READ` → banks gather in parallel → `STAGE_READ` returns
//!   the line; writes: `STAGE_WRITE` sends the line → `VEC_WRITE` → banks
//!   scatter → completion line deasserts.
//!
//! The front end issues host requests as fast as bus resources allow —
//! the "infinitely fast CPU" assumption of §6.2 under which the paper's
//! numbers are measured.

use std::collections::VecDeque;
use std::sync::Arc;

use pva_core::{BankId, K1Pla, LogicalView, PvaError, WordAddr};
use sdram::SdramStats;

use crate::bank_controller::{BankController, BcStats};
use crate::command::{Completion, HostRequest, OpKind, TxnId, VectorCommand};
use crate::config::PvaConfig;
use crate::sched::{EventQueue, EventStats};
use crate::trace_log::TraceEvent;
use crate::txn::{Transaction, TransactionTable, TxnPhase};

/// What the vector bus is doing this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusActivity {
    /// Free for a request broadcast or to start staging.
    Idle,
    /// Moving line data for `txn`; `cycles_left` data cycles remain.
    Staging {
        txn: TxnId,
        kind: OpKind,
        cycles_left: u64,
    },
}

/// Aggregate statistics for a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Cycles the vector bus carried a request broadcast.
    pub request_cycles: u64,
    /// Cycles the vector bus carried line data.
    pub data_cycles: u64,
    /// Cycles the vector bus idled.
    pub idle_cycles: u64,
    /// Vector commands broadcast.
    pub commands: u64,
}

/// Result of running a request batch to completion.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total cycles from first request to last completion.
    pub cycles: u64,
    /// Per-request completion records, in submission order.
    pub completions: Vec<Completion>,
    /// Bus-level statistics.
    pub stats: UnitStats,
    /// Per-bank-controller statistics.
    pub bc_stats: Vec<BcStats>,
    /// SDRAM device statistics summed over every bank — fault and ECC
    /// outcomes (`corrected`, `detected_uncorrectable`, `silent`) live
    /// here.
    pub sdram: SdramStats,
}

impl RunResult {
    /// The gathered line of read request `i`.
    ///
    /// # Panics
    ///
    /// Panics if request `i` was a write or is missing.
    pub fn read_data(&self, i: usize) -> &[u64] {
        self.completions[i]
            .data
            .as_deref()
            .expect("request was a read")
    }
}

/// The Parallel Vector Access unit.
///
/// # Examples
///
/// ```
/// use pva_core::Vector;
/// use pva_sim::{HostRequest, PvaConfig, PvaUnit};
///
/// let mut unit = PvaUnit::new(PvaConfig::default())?;
/// let v = Vector::new(0x200, 19, 32)?;
/// let result = unit.run(vec![HostRequest::Read { vector: v }])?;
/// assert_eq!(result.read_data(0).len(), 32);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug)]
pub struct PvaUnit {
    config: PvaConfig,
    bcs: Vec<BankController>,
    txns: TransactionTable,
    bus: BusActivity,
    /// Host requests not yet taken by the front end.
    pending: VecDeque<(usize, HostRequest)>,
    /// Write transactions whose data staged; `VEC_WRITE` broadcast next.
    write_broadcasts: VecDeque<TxnId>,
    /// Vector + direction per transaction slot (the command register the
    /// front end holds while a transaction is outstanding).
    vectors: Vec<Option<(pva_core::Vector, OpKind)>>,
    completions: Vec<Completion>,
    now: u64,
    stats: UnitStats,
    total_requests: usize,
    /// Cycle forward progress was last observed (watchdog).
    last_progress: u64,
    /// Progress fingerprint as of `last_progress`.
    progress_mark: (usize, usize, u64),
    /// Scratch for [`finish_transactions`](PvaUnit::finish_transactions)
    /// (capacity reused across cycles when `fast_sim` is on).
    finish_scratch: Vec<(TxnId, OpKind)>,
    /// Reusable buffer for the controllers due at the executing cycle.
    due_scratch: Vec<u32>,
    /// Count of read transactions in [`TxnPhase::ReadyToStage`] — lets
    /// the fast path prove the staging-arbitration scan empty without
    /// walking the transaction table every idle-bus cycle.
    ready_reads: usize,
    /// Pending per-controller wake-ups for the event-driven fast path.
    sched: EventQueue,
    /// Cycles each bank controller has consumed — lags `now` while the
    /// event loop lazily skips a controller, re-synced (via
    /// [`BankController::advance`]) before its next tick.
    bc_clock: Vec<u64>,
    /// How the event-driven loop spent its time (fast path only).
    event_stats: EventStats,
    events: Vec<TraceEvent>,
}

impl PvaUnit {
    /// Builds a unit for the given configuration.
    ///
    /// Word-interleaved geometries use one K1 PLA per bank controller;
    /// block/cache-line interleaved geometries instantiate the §4.3.1
    /// arrangement of `N` logical first-hit units per controller.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::NotPowerOfTwo`] if the geometry has
    /// `width_words > 1` (multi-word-wide banks are reduced to logical
    /// banks at design time; model them as more banks instead), or
    /// [`PvaError::InvalidConfig`] if the configuration violates a
    /// [`PvaConfig::check`] consistency rule.
    pub fn new(config: PvaConfig) -> Result<Self, PvaError> {
        if config.geometry.width_words() != 1 {
            return Err(PvaError::NotPowerOfTwo(config.geometry.width_words()));
        }
        config
            .validate()
            .map_err(|e| PvaError::InvalidConfig(e.rule()))?;
        let bcs: Vec<BankController> = if config.geometry.block_words() == 1 {
            let pla = Arc::new(K1Pla::new(&config.geometry));
            (0..config.geometry.banks() as usize)
                .map(|b| BankController::new(BankId::new(b), config, pla.clone()))
                .collect()
        } else {
            let view = Arc::new(LogicalView::new(&config.geometry));
            (0..config.geometry.banks() as usize)
                .map(|b| {
                    BankController::new_block_interleaved(BankId::new(b), config, view.clone())
                })
                .collect()
        };
        Ok(PvaUnit {
            config,
            bcs,
            txns: TransactionTable::new(config.transaction_ids),
            bus: BusActivity::Idle,
            pending: VecDeque::new(),
            write_broadcasts: VecDeque::new(),
            vectors: vec![None; config.transaction_ids],
            completions: Vec::new(),
            now: 0,
            stats: UnitStats::default(),
            total_requests: 0,
            last_progress: 0,
            progress_mark: (0, 0, 0),
            finish_scratch: Vec::new(),
            due_scratch: Vec::new(),
            ready_reads: 0,
            sched: EventQueue::default(),
            bc_clock: Vec::new(),
            event_stats: EventStats::default(),
            events: Vec::new(),
        })
    }

    /// The configuration.
    pub const fn config(&self) -> &PvaConfig {
        &self.config
    }

    /// Current cycle.
    pub const fn now(&self) -> u64 {
        self.now
    }

    /// Drains the merged, cycle-ordered trace log (empty unless
    /// [`PvaConfig::record_trace`] is set).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        let mut all = std::mem::take(&mut self.events);
        for bc in &mut self.bcs {
            all.extend(bc.drain_events());
        }
        all.sort_by_key(|e| e.cycle());
        all
    }

    /// Functional write of a global word (test setup / preloading).
    pub fn preload(&mut self, addr: WordAddr, value: u64) {
        let bank = self.config.geometry.decode_bank(addr).index();
        let local = self.config.geometry.bank_local_addr(addr);
        self.bcs[bank].device_mut().poke(local, value);
    }

    /// Functional read of a global word.
    pub fn peek(&self, addr: WordAddr) -> u64 {
        let bank = self.config.geometry.decode_bank(addr).index();
        let local = self.config.geometry.bank_local_addr(addr);
        self.bcs[bank].device().peek(local)
    }

    /// Runs a batch of host requests to completion, returning cycle
    /// counts and gathered data.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::VectorTooLong`] if any request exceeds the
    /// hardware line length (split with [`pva_core::Vector::chunks`]
    /// first), [`PvaError::WriteLineMismatch`] if a write's data is not
    /// one word per element, or [`PvaError::Watchdog`] if no transaction
    /// makes forward progress for [`PvaConfig::watchdog_cycles`] cycles
    /// (an internal deadlock or an unrecoverable fault loop).
    pub fn run(&mut self, requests: Vec<HostRequest>) -> Result<RunResult, PvaError> {
        // Validate the whole batch before accepting any of it.
        for r in &requests {
            if r.vector().length() > self.config.line_words {
                return Err(PvaError::VectorTooLong(
                    r.vector().length(),
                    self.config.line_words,
                ));
            }
            if let HostRequest::Write { vector, data } = r {
                if data.len() as u64 != vector.length() {
                    return Err(PvaError::WriteLineMismatch {
                        expected: vector.length(),
                        got: data.len() as u64,
                    });
                }
            }
        }
        for r in requests {
            self.submit(r)?;
        }
        let start = self.now;
        self.drive(u64::MAX)?;
        self.completions.sort_by_key(|c| c.request_index);
        Ok(RunResult {
            cycles: self.now - start,
            completions: std::mem::take(&mut self.completions),
            stats: self.stats,
            bc_stats: self.bcs.iter().map(|bc| *bc.stats()).collect(),
            sdram: self.sdram_stats(),
        })
    }

    /// Summed SDRAM device statistics across every bank controller.
    pub fn sdram_stats(&self) -> SdramStats {
        let mut total = SdramStats::default();
        for bc in &self.bcs {
            total.merge(bc.device().stats());
        }
        total
    }

    /// Bus-level statistics accumulated so far (incremental API;
    /// [`PvaUnit::run`] returns a snapshot in its [`RunResult`]).
    pub const fn stats(&self) -> &UnitStats {
        &self.stats
    }

    /// Per-bank-controller statistics accumulated so far.
    pub fn bc_stats(&self) -> Vec<BcStats> {
        self.bcs.iter().map(|bc| *bc.stats()).collect()
    }

    /// How the event-driven fast path spent its time, cumulative over
    /// every [`run`](PvaUnit::run)/[`run_until`](PvaUnit::run_until)
    /// call on this unit. All-zero when the reference stepper ran
    /// (`fast_sim` off).
    pub const fn event_stats(&self) -> &EventStats {
        &self.event_stats
    }

    /// Advances the unit until all submitted work completes **or** the
    /// global clock reaches `deadline`, whichever comes first — the
    /// batched form of [`step`](PvaUnit::step) that lets the fast path
    /// jump idle stretches instead of ticking through them. Returns
    /// whether the unit fully drained. Completions accumulate for
    /// [`take_completions`](PvaUnit::take_completions).
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::Watchdog`] exactly as
    /// [`run`](PvaUnit::run) would, at the identical cycle — the
    /// deadline only bounds time, it never masks a hang that fires
    /// within it.
    pub fn run_until(&mut self, deadline: u64) -> Result<bool, PvaError> {
        self.drive(deadline)?;
        Ok(self.idle())
    }

    /// Advances until idle or `deadline`: serially (reference model) or
    /// via the event loop (`fast_sim`).
    fn drive(&mut self, deadline: u64) -> Result<(), PvaError> {
        if !self.config.fast_sim {
            while !self.idle() && self.now < deadline {
                self.step_inner()?;
            }
            return Ok(());
        }
        self.run_events(deadline)
    }

    /// Enqueues one host request without advancing time — the
    /// incremental half of the API, for callers (CPU models, Impulse
    /// front ends) that interleave their own work with the memory
    /// system. Returns the request's submission index.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::VectorTooLong`] if the request exceeds the
    /// hardware line length, or [`PvaError::WriteLineMismatch`] if a
    /// write's data is not one word per element.
    pub fn submit(&mut self, request: HostRequest) -> Result<usize, PvaError> {
        if request.vector().length() > self.config.line_words {
            return Err(PvaError::VectorTooLong(
                request.vector().length(),
                self.config.line_words,
            ));
        }
        if let HostRequest::Write { vector, data } = &request {
            if data.len() as u64 != vector.length() {
                return Err(PvaError::WriteLineMismatch {
                    expected: vector.length(),
                    got: data.len() as u64,
                });
            }
        }
        let index = self.total_requests;
        self.pending.push_back((index, request));
        self.total_requests += 1;
        Ok(index)
    }

    /// Advances the unit one clock cycle (incremental API).
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::Watchdog`] if no transaction has made forward
    /// progress for [`PvaConfig::watchdog_cycles`] cycles while work is
    /// outstanding — the simulation aborts instead of hanging. Disabled
    /// when `watchdog_cycles` is 0.
    pub fn step(&mut self) -> Result<(), PvaError> {
        self.step_inner().map(|_| ())
    }

    /// [`step`](PvaUnit::step), additionally reporting whether the
    /// cycle changed any state beyond pure counter advancement.
    fn step_inner(&mut self) -> Result<bool, PvaError> {
        let did_work = self.tick();
        self.watchdog_check()?;
        Ok(did_work)
    }

    /// Post-tick watchdog bookkeeping, shared by the serial stepper and
    /// the event loop: tracks the progress fingerprint and aborts when
    /// nothing has moved for [`PvaConfig::watchdog_cycles`] cycles.
    fn watchdog_check(&mut self) -> Result<(), PvaError> {
        if self.config.watchdog_cycles == 0 || self.idle() {
            self.last_progress = self.now;
            self.progress_mark = self.progress_fingerprint();
            return Ok(());
        }
        let mark = self.progress_fingerprint();
        if mark != self.progress_mark {
            self.progress_mark = mark;
            self.last_progress = self.now;
        } else if self.now - self.last_progress >= self.config.watchdog_cycles {
            return Err(PvaError::Watchdog {
                cycle: self.now,
                stalled_txns: self.txns.open_count(),
            });
        }
        Ok(())
    }

    /// Earliest cycle the front end (bus + transaction table) does
    /// non-counter work without any bank controller acting first, given
    /// the current cycle has not yet executed. `Some(now)` when the bus
    /// has a broadcast, staging grant, or request acceptance to perform
    /// this very cycle; `Some(later)` when the bus is mid-transfer —
    /// the intermediate data beats are pure counter advancement and
    /// only the final beat (transaction close / `VEC_WRITE` hand-off)
    /// changes state; `None` when the front end is blocked until a
    /// controller deposits. Front-end state only changes at executed
    /// cycles, so the event loop may jump the gaps this exposes.
    fn front_wake(&self) -> Option<u64> {
        match self.bus {
            BusActivity::Staging { cycles_left, .. } => Some(self.now + cycles_left - 1),
            BusActivity::Idle => {
                if !self.write_broadcasts.is_empty()
                    || self.ready_reads > 0
                    || (!self.pending.is_empty()
                        && self.txns.open_count() < self.config.transaction_ids)
                {
                    Some(self.now)
                } else {
                    None
                }
            }
        }
    }

    /// The event-driven fast path: instead of ticking every component
    /// every cycle, executes only cycles where the front end is live or
    /// a bank controller is due, and bulk-advances across the provably
    /// idle gaps. Cycle-exact with the reference stepper by
    /// construction:
    ///
    /// * a controller whose tick did no work reports the earliest cycle
    ///   the decision could change ([`BankController::wake_hint`]);
    ///   every cycle before it replays the same no-op;
    /// * a broadcast re-arms the controllers it hits at the broadcast
    ///   cycle itself (the reference model runs their first-hit logic
    ///   that same tick);
    /// * skipped cycles advance only the pure counters — cycle/idle
    ///   stats here, device clocks and restimers lazily per controller
    ///   on its next wake;
    /// * jumps are clamped so a pending watchdog fires at the identical
    ///   cycle, and to `deadline` for bounded runs.
    fn run_events(&mut self, deadline: u64) -> Result<(), PvaError> {
        // Arm every controller for the current cycle: the first
        // executed cycle ticks them all exactly like the reference
        // model, and their wake hints take over from there.
        self.sched.reset(self.bcs.len());
        self.bc_clock.clear();
        self.bc_clock.resize(self.bcs.len(), self.now);
        for b in 0..self.bcs.len() {
            self.sched.wake(b, self.now);
        }
        while !self.idle() && self.now < deadline {
            // Busy-stretch fast path: controllers re-woken at `t + 1`
            // during the last executed cycle are due *now*, so the
            // earliest event is the current cycle and the jump logic
            // below could only ever produce a zero-length skip. The
            // watchdog needs no clamp either — it only bounds jumps,
            // and `exec_cycle` runs its per-cycle check regardless.
            if self.sched.has_due_next() {
                self.exec_cycle()?;
                continue;
            }
            let candidate = match (self.front_wake(), self.sched.next_event()) {
                (Some(f), Some(e)) => Some(f.min(e)),
                (Some(f), None) => Some(f),
                (None, Some(e)) => Some(e),
                (None, None) => None,
            };
            let mut target = match candidate {
                Some(c) => c,
                // Every controller is parked and the front end is
                // blocked, yet work is outstanding: a genuine stall.
                // Jump straight to the watchdog's firing cycle (or
                // crawl, matching the reference hang, when disabled).
                None if self.config.watchdog_cycles == 0 => self.now,
                None => {
                    self.last_progress
                        .saturating_add(self.config.watchdog_cycles)
                        - 1
                }
            };
            if self.config.watchdog_cycles > 0 {
                // The reference fires at the first post-tick cycle with
                // now - last_progress >= watchdog_cycles; never jump
                // past the cycle whose execution reaches it.
                target = target.min(
                    self.last_progress
                        .saturating_add(self.config.watchdog_cycles)
                        - 1,
                );
            }
            if target >= deadline {
                // Nothing can happen before the deadline: skip to it.
                #[cfg(debug_assertions)]
                self.assert_wake_sound(deadline);
                self.skip_to(deadline);
                break;
            }
            #[cfg(debug_assertions)]
            self.assert_wake_sound(target);
            self.skip_to(target);
            self.exec_cycle()?;
        }
        // Re-align every lazily-skipped controller with the unit clock
        // so the incremental API (`step`) and later batched calls see a
        // uniform time base, and disarm the queue (broadcasts issued
        // through `step` must not touch it).
        for (bc, clock) in self.bcs.iter_mut().zip(&mut self.bc_clock) {
            let lag = self.now - *clock;
            if lag > 0 {
                bc.advance(lag);
            }
            *clock = self.now;
        }
        self.sched.reset(0);
        Ok(())
    }

    /// Bulk-advances the unit clock to `target` without executing the
    /// intervening cycles. Each one would have been either an idle bus
    /// arbitration or an intermediate staging data beat, plus a no-op
    /// tick in every controller; controller clocks catch up lazily at
    /// their next wake.
    fn skip_to(&mut self, target: u64) {
        let gap = target - self.now;
        if gap == 0 {
            return;
        }
        self.stats.cycles += gap;
        if let BusActivity::Staging { cycles_left, .. } = &mut self.bus {
            // Mid-transfer beats: move the beat counter in bulk. The
            // final beat does real work, so the jump never covers it.
            debug_assert!(gap < *cycles_left, "the closing beat must execute");
            *cycles_left -= gap;
            self.stats.data_cycles += gap;
        } else {
            self.stats.idle_cycles += gap;
        }
        self.now = target;
        self.event_stats.skipped_cycles += gap;
        self.event_stats.record_jump(gap);
    }

    /// Debug-build wake-hint soundness oracle: before every jump the
    /// event loop is about to take, prove — by brute force — that the
    /// skipped window really is dead time for every bank controller.
    ///
    /// For each controller, the window `[bc_clock[b], target)` is the
    /// stretch its hint claimed nothing happens in. The oracle clones
    /// the controller (and the transaction table) and replays the
    /// window cycle-by-cycle, then compares against a second clone that
    /// takes the same bulk `advance` the lazy catch-up path will take:
    /// identical controller and device statistics, and an untouched
    /// transaction table, mean every replayed tick was the no-op the
    /// hint promised. A `compute_wake` source that forgets a wake
    /// condition (a stale row-timer bound, a dropped read-return check)
    /// trips these assertions on the first sweep that crosses it.
    ///
    /// This is the dynamic half of the `pva-analysis` wake-hint pass:
    /// the static pass checks that every trigger in the controller has
    /// a matching source in `compute_wake`; this oracle checks that the
    /// computed cycle itself is never too late.
    #[cfg(debug_assertions)]
    fn assert_wake_sound(&self, target: u64) {
        for (b, bc) in self.bcs.iter().enumerate() {
            let from = self.bc_clock[b];
            if target <= from {
                continue;
            }
            let mut ticked = bc.clone();
            let mut txns = self.txns.clone();
            for t in from..target {
                ticked.tick(t, &mut txns);
            }
            let mut advanced = bc.clone();
            advanced.advance(target - from);
            assert_eq!(
                ticked.stats(),
                advanced.stats(),
                "bank controller {b}: cycle-by-cycle replay of {from}..{target} diverged \
                 from the bulk advance — compute_wake returned an unsound hint"
            );
            assert_eq!(
                ticked.device().stats(),
                advanced.device().stats(),
                "bank controller {b}: device activity inside the skipped window \
                 {from}..{target} — compute_wake returned an unsound hint"
            );
            assert_eq!(
                txns.progress_counters(),
                self.txns.progress_counters(),
                "bank controller {b}: transaction progress inside the skipped window \
                 {from}..{target} — compute_wake returned an unsound hint"
            );
            assert_eq!(
                txns.open_count(),
                self.txns.open_count(),
                "bank controller {b}: transaction opened/closed inside the skipped window \
                 {from}..{target} — compute_wake returned an unsound hint"
            );
        }
    }

    /// Executes one full cycle of the event loop: bus arbitration, all
    /// due bank controllers (in index order, like the reference), and
    /// transaction bookkeeping, then reschedules each ticked controller
    /// from its outcome.
    fn exec_cycle(&mut self) -> Result<(), PvaError> {
        let t = self.now;
        // A broadcast inside bus_step wakes the hit controllers at `t`,
        // so they are popped below within this same cycle.
        self.bus_step();
        let mut bc_work = false;
        // One batched drain: controller ticks never wake another
        // controller at the same cycle (hints clamp to `now + 1`;
        // broadcasts happen in `bus_step` above), so the due set is
        // fixed before the first tick runs.
        let mut due = std::mem::take(&mut self.due_scratch);
        self.sched.drain_due(t, &mut due);
        self.event_stats.events_popped += due.len() as u64;
        for &b in &due {
            let b = b as usize;
            let lag = t - self.bc_clock[b];
            if lag > 0 {
                self.bcs[b].advance(lag);
            }
            self.bc_clock[b] = t + 1;
            let worked = self.bcs[b].tick(t, &mut self.txns);
            bc_work |= worked;
            // A published hint takes priority even over a tick that
            // "worked": it means the work was a pure per-cycle replay
            // (a blocked access observing its row hit) that `advance`
            // reproduces arithmetically across the gap.
            if let Some(w) = self.bcs[b].wake_hint() {
                self.sched.wake(b, w);
            } else if worked {
                self.sched.wake(b, t + 1);
            } else if !self.bcs[b].quiet() {
                // No hint but not at rest (a state the hint sources do
                // not cover): fall back to per-cycle stepping rather
                // than risk sleeping through a transition.
                self.sched.wake(b, t + 1);
            }
            // Quiet with no hint: parked until a broadcast re-arms it.
        }
        self.due_scratch = due;
        // Phase transitions require a deposit or commit this very cycle
        // (they happen the cycle the last element lands), and every
        // deposit/commit marks its controller's tick as work — no
        // controller work means the scan is provably empty.
        if bc_work {
            self.finish_transactions();
        }
        self.stats.cycles += 1;
        self.now += 1;
        self.event_stats.executed_cycles += 1;
        self.watchdog_check()
    }

    /// A change in this tuple is what the watchdog counts as forward
    /// progress: requests draining, transactions opening/closing, or
    /// elements being gathered/committed. Deliberately excludes raw
    /// SDRAM command counts — an unrecoverable retry loop issues reads
    /// forever without ever completing anything.
    fn progress_fingerprint(&self) -> (usize, usize, u64) {
        if self.config.fast_sim {
            // O(1) form of the scan below, from the transaction table's
            // incrementally-maintained counters (asserted equal to a
            // fresh scan in debug builds). The reference model keeps
            // the per-cycle walk as the baseline cost.
            let (open, moved) = self.txns.progress_counters();
            let outstanding = self.pending.len() + open + self.write_broadcasts.len();
            return (outstanding, open, moved);
        }
        let moved: u64 = self
            .txns
            .iter_open()
            .map(|(_, t)| t.collected_count + t.committed_count)
            .sum();
        (self.outstanding(), self.txns.open_count(), moved)
    }

    /// Whether all submitted work has fully completed.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
            && self.txns.open_count() == 0
            && self.write_broadcasts.is_empty()
            && self.bus == BusActivity::Idle
    }

    /// Number of requests accepted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.txns.open_count() + self.write_broadcasts.len()
    }

    /// Drains completion records accumulated so far (incremental API;
    /// [`PvaUnit::run`] drains them itself).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        let mut out = std::mem::take(&mut self.completions);
        out.sort_by_key(|c| c.request_index);
        out
    }

    /// Advances the whole unit one cycle. Returns whether any component
    /// (bus, bank controller, transaction table) changed state beyond
    /// pure counter advancement.
    fn tick(&mut self) -> bool {
        let mut work = self.bus_step();
        for bc in &mut self.bcs {
            work |= bc.tick(self.now, &mut self.txns);
        }
        work |= self.finish_transactions();
        self.stats.cycles += 1;
        self.now += 1;
        work
    }

    /// One vector-bus arbitration step. Returns `false` only when the
    /// bus idled with nothing to broadcast, stage, or accept.
    fn bus_step(&mut self) -> bool {
        match self.bus {
            BusActivity::Staging {
                txn,
                kind,
                cycles_left,
            } => {
                self.stats.data_cycles += 1;
                let left = cycles_left - 1;
                if left > 0 {
                    self.bus = BusActivity::Staging {
                        txn,
                        kind,
                        cycles_left: left,
                    };
                    return true;
                }
                self.bus = BusActivity::Idle;
                match kind {
                    OpKind::Read => {
                        // STAGE_READ done: line delivered to the host.
                        let t = self.txns.close(txn);
                        self.vectors[txn.0 as usize] = None;
                        if self.config.record_trace {
                            self.events.push(TraceEvent::Completed {
                                cycle: self.now,
                                txn,
                                request_index: t.request_index,
                            });
                        }
                        let line = t.line();
                        self.completions.push(Completion {
                            request_index: t.request_index,
                            issued_at: t.issued_at,
                            completed_at: self.now,
                            data: Some(line),
                            faulted: t.faulted,
                        });
                    }
                    OpKind::Write => {
                        // STAGE_WRITE done: broadcast VEC_WRITE next.
                        self.write_broadcasts.push_back(txn);
                    }
                }
                true
            }
            BusActivity::Idle => {
                // Priority 1: broadcast a staged write's VEC_WRITE.
                if let Some(txn) = self.write_broadcasts.pop_front() {
                    self.broadcast(txn);
                    return true;
                }
                // Priority 2: stage a completed read (drains txn ids).
                // The fast path proves the scan empty from the
                // ready-read counter; the reference model walks the
                // table every idle-bus cycle.
                let ready = if self.config.fast_sim && self.ready_reads == 0 {
                    debug_assert!(!self
                        .txns
                        .iter_open()
                        .any(|(_, t)| t.kind == OpKind::Read && t.phase == TxnPhase::ReadyToStage));
                    None
                } else {
                    self.txns
                        .iter_open()
                        .filter(|(_, t)| {
                            t.kind == OpKind::Read && t.phase == TxnPhase::ReadyToStage
                        })
                        .min_by_key(|(_, t)| t.issued_at)
                        .map(|(id, t)| (id, t.length))
                };
                if let Some((id, len)) = ready {
                    self.ready_reads -= 1;
                    self.txns.get_mut(id).expect("open").phase = TxnPhase::Staging;
                    if self.config.record_trace {
                        self.events.push(TraceEvent::StageStart {
                            cycle: self.now,
                            txn: id,
                            kind: OpKind::Read,
                        });
                    }
                    self.bus = BusActivity::Staging {
                        txn: id,
                        kind: OpKind::Read,
                        // pva-lint: allow(nonconst-div): stage_words_per_cycle is a power of two by config validation (bus width); a shift
                        cycles_left: len.div_ceil(self.config.stage_words_per_cycle),
                    };
                    // This cycle already carries the first data beat.
                    self.bus_step();
                    return true;
                }
                // Priority 3: accept the next host request (the
                // pending check first: it is free, while the free-slot
                // scan walks the table).
                if !self.pending.is_empty() {
                    if let Some(free) = self.txns.free_id() {
                        let (index, req) = self.pending.pop_front().expect("non-empty");
                        match req {
                            HostRequest::Read { vector } => {
                                self.txns.open(
                                    free,
                                    Transaction {
                                        kind: OpKind::Read,
                                        length: vector.length(),
                                        request_index: index,
                                        issued_at: self.now,
                                        collected: vec![None; vector.length() as usize],
                                        collected_count: 0,
                                        committed_count: 0,
                                        write_line: None,
                                        faulted: Vec::new(),
                                        phase: TxnPhase::InBanks,
                                    },
                                );
                                self.open_vector(free, vector, OpKind::Read);
                                self.broadcast(free);
                            }
                            HostRequest::Write { vector, data } => {
                                let line = Arc::new(data);
                                self.txns.open(
                                    free,
                                    Transaction {
                                        kind: OpKind::Write,
                                        length: vector.length(),
                                        request_index: index,
                                        issued_at: self.now,
                                        collected: Vec::new(),
                                        collected_count: 0,
                                        committed_count: 0,
                                        write_line: Some(line),
                                        faulted: Vec::new(),
                                        phase: TxnPhase::InBanks,
                                    },
                                );
                                self.open_vector(free, vector, OpKind::Write);
                                // STAGE_WRITE first (§5.2.6), then the
                                // VEC_WRITE broadcast.
                                if self.config.record_trace {
                                    self.events.push(TraceEvent::StageStart {
                                        cycle: self.now,
                                        txn: free,
                                        kind: OpKind::Write,
                                    });
                                }
                                self.bus = BusActivity::Staging {
                                    txn: free,
                                    kind: OpKind::Write,
                                    cycles_left: vector
                                        .length()
                                        // pva-lint: allow(nonconst-div): stage_words_per_cycle is a power of two by config validation (bus width); a shift
                                        .div_ceil(self.config.stage_words_per_cycle),
                                };
                                self.stats.data_cycles += 1;
                                if let BusActivity::Staging { cycles_left, .. } = &mut self.bus {
                                    *cycles_left -= 1;
                                    if *cycles_left == 0 {
                                        self.bus = BusActivity::Idle;
                                        self.write_broadcasts.push_back(free);
                                    }
                                }
                            }
                        }
                        return true;
                    }
                }
                self.stats.idle_cycles += 1;
                false
            }
        }
    }

    /// Remembers the vector of a transaction for its later broadcast.
    fn open_vector(&mut self, id: TxnId, vector: pva_core::Vector, kind: OpKind) {
        // Vectors are stored alongside the transaction via a side table
        // keyed by id (simple because ids are small).
        self.vectors[id.0 as usize] = Some((vector, kind));
    }

    /// Broadcasts the command for transaction `id` to every bank
    /// controller (one request cycle).
    fn broadcast(&mut self, id: TxnId) {
        let (vector, kind) = self.vectors[id.0 as usize].expect("vector recorded at open");
        let cmd = VectorCommand {
            vector,
            kind,
            txn: id,
        };
        let line = self.txns.get(id).and_then(|t| t.write_line.clone());
        let txn = self.txns.get_mut(id).expect("open transaction");
        txn.issued_at = self.now;
        if self.config.record_trace {
            self.events.push(TraceEvent::Broadcast {
                cycle: self.now,
                txn: id,
                vector,
                kind,
            });
        }
        let mut covered = 0;
        for (b, bc) in self.bcs.iter_mut().enumerate() {
            let served = bc.observe_command(&cmd, line.clone(), self.now);
            covered += served;
            if served > 0 {
                // The reference model runs the hit controllers'
                // first-hit logic this very tick; the event loop must
                // pop them at the broadcast cycle too (no-op when the
                // loop is not running — the queue is disarmed).
                self.sched.wake_if_armed(b, self.now);
            }
        }
        debug_assert_eq!(covered, vector.length(), "banks must cover the vector");
        self.stats.request_cycles += 1;
        self.stats.commands += 1;
    }

    /// Moves transactions whose banks finished into their next phase and
    /// completes writes. Returns whether any transaction moved.
    fn finish_transactions(&mut self) -> bool {
        // The fast path proves the scan empty from the banks-done
        // counter; the reference model walks the table every cycle.
        if self.config.fast_sim && self.txns.banks_done_count() == 0 {
            debug_assert!(!self
                .txns
                .iter_open()
                .any(|(_, t)| t.phase == TxnPhase::InBanks && t.banks_done()));
            return false;
        }
        // The fast path keeps the buffer's capacity across cycles; the
        // reference path reallocates each call.
        let mut done = std::mem::take(&mut self.finish_scratch);
        done.clear();
        done.extend(
            self.txns
                .iter_open()
                .filter(|(_, t)| t.phase == TxnPhase::InBanks && t.banks_done())
                .map(|(id, t)| (id, t.kind)),
        );
        let moved = !done.is_empty();
        self.txns.consume_banks_done(done.len());
        for &(id, kind) in &done {
            match kind {
                OpKind::Read => {
                    self.txns.get_mut(id).expect("open").phase = TxnPhase::ReadyToStage;
                    self.ready_reads += 1;
                }
                OpKind::Write => {
                    // Transaction-complete line deasserts: data committed.
                    let t = self.txns.close(id);
                    if self.config.record_trace {
                        self.events.push(TraceEvent::Completed {
                            cycle: self.now,
                            txn: id,
                            request_index: t.request_index,
                        });
                    }
                    self.completions.push(Completion {
                        request_index: t.request_index,
                        issued_at: t.issued_at,
                        completed_at: self.now,
                        data: None,
                        faulted: Vec::new(),
                    });
                    self.vectors[id.0 as usize] = None;
                }
            }
        }
        if self.config.fast_sim {
            self.finish_scratch = done;
        }
        moved
    }
}
