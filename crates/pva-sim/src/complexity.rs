//! Hardware-complexity proxy for the Table-1 reproduction.
//!
//! The paper's Table 1 reports Xilinx gate counts from synthesizing the
//! Verilog prototype — not reproducible without an HDL toolchain. What
//! *is* reproducible from the architecture is the storage each module
//! needs: PLA table bits, register-file bits, context state, staging
//! RAM. This module derives those from a [`PvaConfig`], which (a) lands
//! in the same ballpark as the paper's storage-heavy rows (the 2 KB
//! on-chip staging RAM falls out exactly: 8 transactions x 128-byte
//! lines x read+write halves per unit) and (b) reproduces the §4.3.1
//! scaling claims when swept over bank counts.

use pva_core::{FullKiPla, K1Pla};

use crate::config::PvaConfig;

/// Storage of one named module (per bank controller unless stated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleComplexity {
    /// Module name, matching §5.2.2.
    pub module: &'static str,
    /// Flip-flop / latch state bits.
    pub state_bits: u64,
    /// Lookup-table (PLA/ROM) bits.
    pub table_bits: u64,
    /// Dedicated RAM bytes.
    pub ram_bytes: u64,
}

/// Per-unit complexity report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplexityReport {
    /// Bank count the report was computed for.
    pub banks: u64,
    /// Per-module rows (one bank controller).
    pub per_bc: Vec<ModuleComplexity>,
    /// Total state bits across the whole unit (all bank controllers).
    pub total_state_bits: u64,
    /// Total table bits across the whole unit.
    pub total_table_bits: u64,
    /// Total staging RAM bytes across the whole unit.
    pub total_ram_bytes: u64,
}

/// Address width used for sizing registers (the prototype's 32-bit bus).
const ADDR_BITS: u64 = 32;

/// Computes the storage proxy for `config`.
///
/// # Examples
///
/// ```
/// use pva_sim::{unit_complexity, PvaConfig};
/// let r = unit_complexity(&PvaConfig::default());
/// // The paper's Table 1 lists 2K bytes of on-chip RAM: 8 transactions
/// // x 128-byte lines x (read + write staging) across the unit.
/// assert_eq!(r.total_ram_bytes, 2048);
/// ```
pub fn unit_complexity(config: &PvaConfig) -> ComplexityReport {
    let g = &config.geometry;
    let _m = g.log2_banks() as u64;
    let len_bits = 64 - (config.line_words - 1).leading_zeros() as u64;
    let txn_bits = 64 - (config.transaction_ids as u64 - 1).leading_zeros() as u64;
    let ib = config.sdram.total_row_buffers() as u64;

    let k1 = K1Pla::new(g).complexity();
    let full = FullKiPla::new(g).complexity();

    // FHP: the K1 PLA plus the d-divisibility table (M entries x 1 bit)
    // and the comparator/register for the computed index.
    let fhp = ModuleComplexity {
        module: "FirstHit Predict (FHP)",
        state_bits: ADDR_BITS + len_bits + 2,
        table_bits: k1.total_bits + g.banks(),
        ram_bytes: 0,
    };
    // Register file: one entry per outstanding transaction.
    let rf_entry_bits = ADDR_BITS /* base/firsthit addr */
        + ADDR_BITS /* stride */
        + len_bits /* length */
        + len_bits /* firsthit index */
        + txn_bits
        + 1 /* kind */
        + 1 /* ACC flag */;
    let rf = ModuleComplexity {
        module: "Register File + Request FIFO (RF/RQF)",
        state_bits: config.request_fifo_entries as u64 * rf_entry_bits + 2 * txn_bits, /* head/tail pointers */
        table_bits: 0,
        ram_bytes: 0,
    };
    // FHC: multiply-add datapath registers.
    let fhc = ModuleComplexity {
        module: "FirstHit Calculate (FHC)",
        state_bits: 2 * ADDR_BITS + len_bits + txn_bits,
        table_bits: 0,
        ram_bytes: 0,
    };
    // Vector contexts: address, step, element counters, id, flags.
    let vc_bits = ADDR_BITS + ADDR_BITS + 2 * len_bits + len_bits + txn_bits + 3;
    let sched = ModuleComplexity {
        module: "Access Scheduler (SCHED) + Vector Contexts",
        state_bits: config.vector_contexts as u64 * vc_bits
            + ib * (1 /* autoprecharge predictor */ + 14/* last-row tag */)
            + ib * 5 * 3, /* restimers: 5 params x ~3-bit counters */
        table_bits: 0,
        ram_bytes: 0,
    };
    // Staging: read + write halves, one line per transaction across the
    // unit; each BC holds its 1/M share.
    let unit_staging_bytes = 2 * config.transaction_ids as u64 * config.line_words * 4;
    let staging = ModuleComplexity {
        module: "Staging Units (read + write)",
        state_bits: config.transaction_ids as u64 * 2, /* per-txn valid/turn state */
        table_bits: 0,
        ram_bytes: unit_staging_bytes / g.banks(),
    };

    let per_bc = vec![fhp, rf, fhc, sched, staging];
    let total_state_bits: u64 = per_bc.iter().map(|c| c.state_bits).sum::<u64>() * g.banks();
    let total_table_bits: u64 = per_bc.iter().map(|c| c.table_bits).sum::<u64>() * g.banks();
    let total_ram_bytes: u64 = per_bc.iter().map(|c| c.ram_bytes).sum::<u64>() * g.banks();
    let _ = full; // the FullKiPla alternative is reported by the bench sweep

    ComplexityReport {
        banks: g.banks(),
        per_bc,
        total_state_bits,
        total_table_bits,
        total_ram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Geometry;

    #[test]
    fn staging_ram_matches_table_1() {
        let r = unit_complexity(&PvaConfig::default());
        assert_eq!(
            r.total_ram_bytes, 2048,
            "Table 1 lists 2K bytes on-chip RAM"
        );
    }

    #[test]
    fn state_grows_linearly_with_banks() {
        let mk = |banks: u64| {
            let cfg = PvaConfig {
                geometry: Geometry::word_interleaved(banks).unwrap(),
                ..PvaConfig::default()
            };
            unit_complexity(&cfg)
        };
        let r16 = mk(16);
        let r32 = mk(32);
        // Register/context state doubles with bank count (one BC each).
        let s16: u64 = r16.total_state_bits;
        let s32: u64 = r32.total_state_bits;
        assert!(s32 >= 2 * s16 && s32 <= 3 * s16);
    }

    #[test]
    fn report_has_all_figure_6_modules() {
        let r = unit_complexity(&PvaConfig::default());
        let names: Vec<&str> = r.per_bc.iter().map(|m| m.module).collect();
        assert!(names.iter().any(|n| n.contains("FHP")));
        assert!(names.iter().any(|n| n.contains("RF/RQF")));
        assert!(names.iter().any(|n| n.contains("FHC")));
        assert!(names.iter().any(|n| n.contains("SCHED")));
        assert!(names.iter().any(|n| n.contains("Staging")));
    }
}
