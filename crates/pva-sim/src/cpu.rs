//! A simple in-order CPU front end for sensitivity studies.
//!
//! §6.2 qualifies every result: "Speed up experienced by vector
//! applications will be subject to several criteria like the percentage
//! of vectoriseable memory accesses, the issue width of the processor,
//! number of outstanding L2 cache misses permitted etc. But in general
//! it is safe to assume that the faster the processor consumes data,
//! the closer it is to the peak conditions described here."
//!
//! [`CpuModel`] makes those criteria concrete: a processor that issues
//! memory requests at a configurable rate, with a configurable limit on
//! outstanding misses, and a configurable fraction of its traffic
//! vectorizable. Driving the PVA unit through the incremental
//! [`PvaUnit::submit`]/[`PvaUnit::step`] API, it measures how far from
//! the paper's "infinitely fast CPU" peak a realistic front end lands.

use pva_core::{PvaError, Vector};

use crate::command::HostRequest;
use crate::config::PvaConfig;
use crate::unit::PvaUnit;

/// CPU front-end parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Compute cycles the CPU needs between consecutive memory
    /// requests (0 = the paper's infinitely fast CPU).
    pub cycles_between_requests: u64,
    /// Maximum requests in flight (outstanding L2 misses permitted).
    pub max_outstanding: usize,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cycles_between_requests: 0,
            max_outstanding: 8,
        }
    }
}

/// Result of a CPU-driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuRunResult {
    /// Total cycles from first issue to last completion.
    pub cycles: u64,
    /// Cycles the CPU stalled waiting for an outstanding slot.
    pub stall_cycles: u64,
    /// Requests issued.
    pub requests: u64,
}

/// An in-order request generator in front of a PVA unit.
///
/// # Examples
///
/// ```
/// use pva_core::Vector;
/// use pva_sim::{CpuConfig, CpuModel, HostRequest, PvaConfig};
///
/// let reqs: Vec<HostRequest> = (0..8)
///     .map(|i| HostRequest::Read { vector: Vector::new(i * 640, 19, 32).unwrap() })
///     .collect();
/// let fast = CpuModel::new(CpuConfig::default()).drive(PvaConfig::default(), &reqs)?;
/// let slow = CpuModel::new(CpuConfig { cycles_between_requests: 100, max_outstanding: 1 })
///     .drive(PvaConfig::default(), &reqs)?;
/// assert!(slow.cycles > fast.cycles, "a slow CPU cannot reach peak");
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    config: CpuConfig,
}

impl CpuModel {
    /// Creates a CPU model.
    pub fn new(config: CpuConfig) -> Self {
        CpuModel { config }
    }

    /// Issues `requests` in order against a fresh PVA unit, respecting
    /// the issue gap and the outstanding-miss limit; runs to drain.
    ///
    /// # Errors
    ///
    /// Propagates unit configuration/validation errors, and
    /// [`PvaError::Watchdog`] if the unit stops making forward progress
    /// (previously an in-crate panic after a fixed cycle budget).
    pub fn drive(
        &self,
        unit_config: PvaConfig,
        requests: &[HostRequest],
    ) -> Result<CpuRunResult, PvaError> {
        let mut unit = PvaUnit::new(unit_config)?;
        let mut stall_cycles = 0u64;
        let mut next_issue_at = 0u64;
        let start = unit.now();
        let mut queue = requests.iter().cloned();
        let mut next = queue.next();
        while next.is_some() || !unit.idle() {
            if let Some(r) = next.take() {
                let slot_free = unit.outstanding() < self.config.max_outstanding;
                let time_ok = unit.now() >= next_issue_at;
                if slot_free && time_ok {
                    unit.submit(r)?;
                    next_issue_at = unit.now() + self.config.cycles_between_requests;
                    next = queue.next();
                } else {
                    if !slot_free && time_ok {
                        stall_cycles += 1;
                    }
                    next = Some(r);
                }
            }
            unit.step()?;
        }
        let _ = unit.take_completions();
        Ok(CpuRunResult {
            cycles: unit.now() - start,
            stall_cycles,
            requests: requests.len() as u64,
        })
    }
}

/// Amdahl-style mixed workload: `vector_pct` percent of `total` line
/// accesses are strided gathers through the PVA; the rest are
/// unit-stride fills (cache-line traffic a conventional controller
/// would also handle). Returns the request list.
pub fn mixed_workload(total: u64, vector_pct: u64, stride: u64) -> Vec<HostRequest> {
    assert!(vector_pct <= 100);
    (0..total)
        .map(|i| {
            let vectorizable = i * 100 < total * vector_pct;
            let base = i * 32 * stride;
            let v = if vectorizable {
                Vector::new(base, stride, 32)
            } else {
                Vector::unit_stride(base, 32)
            };
            HostRequest::Read {
                vector: v.expect("nonzero parameters"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(n: u64) -> Vec<HostRequest> {
        (0..n)
            .map(|i| HostRequest::Read {
                vector: Vector::new(i * 640, 19, 32).expect("valid"),
            })
            .collect()
    }

    #[test]
    fn infinitely_fast_cpu_matches_batch_run() {
        let reqs = reads(16);
        let cpu = CpuModel::new(CpuConfig::default())
            .drive(PvaConfig::default(), &reqs)
            .unwrap();
        let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
        let batch = unit.run(reqs).unwrap();
        // Same peak-pressure assumption: within a few startup cycles.
        let diff = cpu.cycles.abs_diff(batch.cycles);
        assert!(diff <= 4, "cpu {} vs batch {}", cpu.cycles, batch.cycles);
    }

    #[test]
    fn outstanding_limit_throttles() {
        let reqs = reads(16);
        let wide = CpuModel::new(CpuConfig {
            max_outstanding: 8,
            ..CpuConfig::default()
        })
        .drive(PvaConfig::default(), &reqs)
        .unwrap();
        let narrow = CpuModel::new(CpuConfig {
            max_outstanding: 1,
            ..CpuConfig::default()
        })
        .drive(PvaConfig::default(), &reqs)
        .unwrap();
        assert!(
            narrow.cycles > wide.cycles * 2 / 2,
            "{} vs {}",
            narrow.cycles,
            wide.cycles
        );
        assert!(narrow.cycles > wide.cycles, "serialized misses are slower");
        assert!(narrow.stall_cycles > 0);
    }

    #[test]
    fn slow_issue_rate_hides_memory_system_differences() {
        // With 100 compute cycles between requests, memory is never the
        // bottleneck: total ~= requests x 100.
        let reqs = reads(8);
        let r = CpuModel::new(CpuConfig {
            cycles_between_requests: 100,
            max_outstanding: 8,
        })
        .drive(PvaConfig::default(), &reqs)
        .unwrap();
        assert!(r.cycles >= 700, "compute-bound: {}", r.cycles);
        assert!(
            r.cycles <= 900,
            "but not slower than compute + one drain: {}",
            r.cycles
        );
    }

    #[test]
    fn mixed_workload_fractions() {
        let w = mixed_workload(100, 30, 19);
        let strided = w.iter().filter(|r| r.vector().stride() == 19).count();
        assert_eq!(strided, 30);
        assert_eq!(w.len(), 100);
    }
}
