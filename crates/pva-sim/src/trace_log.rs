//! Cycle-stamped event tracing.
//!
//! When [`PvaConfig::record_trace`] is set, the unit and every bank
//! controller log their externally-visible actions — command
//! broadcasts, SDRAM operations, staging activity, transaction
//! completions — as [`TraceEvent`]s. [`PvaUnit::take_events`] returns
//! the merged, cycle-ordered log: the software analogue of the Verilog
//! waveform dumps the paper's authors debugged against.
//!
//! [`PvaConfig::record_trace`]: crate::PvaConfig::record_trace
//! [`PvaUnit::take_events`]: crate::PvaUnit::take_events

use pva_core::Vector;

use crate::command::{OpKind, TxnId};

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A vector command was broadcast on the BC bus.
    Broadcast {
        /// Cycle of the request cycle.
        cycle: u64,
        /// Transaction id.
        txn: TxnId,
        /// The vector.
        vector: Vector,
        /// Direction.
        kind: OpKind,
    },
    /// A bank controller issued an SDRAM operation.
    BankOp {
        /// Cycle of the clock edge.
        cycle: u64,
        /// External bank index.
        bank: usize,
        /// Operation mnemonic: `ACT`, `RD`, `RDA`, `WR`, `WRA`, `PRE`,
        /// `REF`.
        op: &'static str,
        /// Internal bank addressed (`u32::MAX` for device-wide ops).
        internal_bank: u32,
        /// Row addressed (activates) or row of the access.
        row: u64,
    },
    /// A line-staging burst started on the vector bus.
    StageStart {
        /// First data cycle.
        cycle: u64,
        /// Transaction id.
        txn: TxnId,
        /// Direction of the staged data.
        kind: OpKind,
    },
    /// A transaction fully completed (line delivered / data committed).
    Completed {
        /// Completion cycle.
        cycle: u64,
        /// Transaction id.
        txn: TxnId,
        /// Submission-order request index.
        request_index: usize,
    },
}

impl TraceEvent {
    /// The cycle the event occurred.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Broadcast { cycle, .. }
            | TraceEvent::BankOp { cycle, .. }
            | TraceEvent::StageStart { cycle, .. }
            | TraceEvent::Completed { cycle, .. } => cycle,
        }
    }
}

impl core::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceEvent::Broadcast {
                cycle,
                txn,
                vector,
                kind,
            } => {
                write!(f, "[{cycle:>6}] bus  {kind:?} {txn} {vector}")
            }
            TraceEvent::BankOp {
                cycle,
                bank,
                op,
                internal_bank,
                row,
            } => {
                write!(
                    f,
                    "[{cycle:>6}] B{bank:<2}  {op:<3} ib={internal_bank} row={row}"
                )
            }
            TraceEvent::StageStart { cycle, txn, kind } => {
                write!(f, "[{cycle:>6}] bus  STAGE_{kind:?} {txn}")
            }
            TraceEvent::Completed {
                cycle,
                txn,
                request_index,
            } => {
                write!(f, "[{cycle:>6}] done {txn} (request {request_index})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accessor_and_display() {
        let e = TraceEvent::BankOp {
            cycle: 42,
            bank: 3,
            op: "ACT",
            internal_bank: 1,
            row: 9,
        };
        assert_eq!(e.cycle(), 42);
        assert!(e.to_string().contains("ACT"));
        let v = Vector::new(0, 4, 8).unwrap();
        let b = TraceEvent::Broadcast {
            cycle: 1,
            txn: TxnId(2),
            vector: v,
            kind: OpKind::Read,
        };
        assert!(b.to_string().contains("t2"));
    }
}
