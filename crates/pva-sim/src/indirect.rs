//! Two-phase vector-indirect gather (§7 extension).
//!
//! The paper's conclusion sketches how the PVA handles sparse
//! scatter/gather: (1) load the indirection vector — an ordinary
//! unit-stride PVA read; (2) broadcast its contents on the vector bus at
//! two addresses per cycle while every bank controller snoops and claims
//! the addresses that decode to its bank; then all banks gather their
//! claims in parallel and the line is coalesced through the staging
//! units as usual.
//!
//! Phase 1 runs on the full [`PvaUnit`]; phase 2 is modelled with the
//! same SDRAM devices driven by a per-bank open-row scheduler (the
//! claims are irregular, so no vector context machinery applies).

use pva_core::{IndirectVector, PvaError, Vector};
use sdram::{Sdram, SdramCmd};

use crate::command::HostRequest;
use crate::config::PvaConfig;
use crate::unit::PvaUnit;

/// Cycle breakdown of a two-phase indirect gather.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectTiming {
    /// Phase 1: loading the indirection vector (PVA unit cycles).
    pub phase1_cycles: u64,
    /// Broadcasting the indices on the vector bus (2 per cycle).
    pub broadcast_cycles: u64,
    /// Phase 2: parallel per-bank gather (max over banks).
    pub phase2_cycles: u64,
    /// Staging the gathered line back to the host.
    pub stage_cycles: u64,
    /// End-to-end total.
    pub total_cycles: u64,
    /// Gathered data, in element order.
    pub data: Vec<u64>,
}

/// Runs an indirect gather: loads the index vector from `index_base`
/// through the PVA unit, then gathers `iv`'s elements bank-parallel.
///
/// # Errors
///
/// Propagates PVA unit errors from phase 1.
pub fn run_indirect_gather(
    config: PvaConfig,
    iv: &IndirectVector,
    index_base: u64,
) -> Result<IndirectTiming, PvaError> {
    // Phase 1: unit-stride load of the indirection vector, in line-sized
    // chunks.
    let mut unit = PvaUnit::new(config)?;
    let index_vec = Vector::unit_stride(index_base, iv.length())?;
    let reads: Vec<HostRequest> = index_vec
        .chunks(config.line_words)
        .map(|v| HostRequest::Read { vector: v })
        .collect();
    let phase1 = unit.run(reads)?;
    let phase1_cycles = phase1.cycles;

    // Broadcast: two addresses per data cycle on the 128-bit BC bus.
    let broadcast_cycles = iv.length().div_ceil(2);

    // Phase 2: every bank serves its claim against its own SDRAM with
    // open-row reuse; banks run in parallel, so the phase costs the
    // slowest bank.
    let g = config.geometry;
    let mut data = vec![0u64; iv.length() as usize];
    let mut phase2_cycles = 0u64;
    for b in 0..g.banks() {
        let bank = pva_core::BankId::new(b as usize);
        let claims: Vec<u64> = iv.claim(bank, &g).collect();
        if claims.is_empty() {
            continue;
        }
        let mut dev = Sdram::new(config.sdram);
        let mut cycles = 0u64;
        for &elem in &claims {
            let addr = iv.element(elem);
            let local = g.bank_local_addr(addr);
            let ia = config.sdram.map(local);
            // Open the right row if needed, waiting out timers.
            loop {
                if dev.open_row(ia.bank) == Some(ia.row) {
                    let cmd = SdramCmd::Read {
                        bank: ia.bank,
                        col: ia.col,
                        auto_precharge: false,
                        tag: elem,
                    };
                    if dev.issue(cmd).is_ok() {
                        dev.tick();
                        cycles += 1;
                        break;
                    }
                } else if dev.open_row(ia.bank).is_some() {
                    let _ = dev.issue(SdramCmd::Precharge { bank: ia.bank });
                } else {
                    let _ = dev.issue(SdramCmd::Activate {
                        bank: ia.bank,
                        row: ia.row,
                    });
                }
                dev.tick();
                cycles += 1;
            }
        }
        // Drain the CAS pipeline.
        while dev.has_in_flight() {
            dev.tick();
            cycles += 1;
            for r in dev.take_ready_data() {
                data[r.tag as usize] = r.data;
            }
        }
        phase2_cycles = phase2_cycles.max(cycles);
    }

    let stage_cycles = iv.length().div_ceil(config.stage_words_per_cycle);
    Ok(IndirectTiming {
        phase1_cycles,
        broadcast_cycles,
        phase2_cycles,
        stage_cycles,
        total_cycles: phase1_cycles + broadcast_cycles + phase2_cycles + stage_cycles,
        data,
    })
}

/// Runs an indirect *scatter*: the symmetric write operation — indices
/// loaded (phase 1), broadcast, then each bank writes its claimed
/// elements in parallel; data is staged to the banks first, like
/// STAGE_WRITE.
///
/// Returns the timing breakdown; the written values are `data[i]` at
/// address `iv.element(i)`, applied to a fresh device set whose final
/// contents are returned as `(element_index, value)` pairs for
/// verification.
///
/// # Errors
///
/// Propagates PVA unit errors from phase 1.
///
/// # Panics
///
/// Panics if `data.len() != iv.length()`.
pub fn run_indirect_scatter(
    config: PvaConfig,
    iv: &IndirectVector,
    index_base: u64,
    data: &[u64],
) -> Result<(IndirectTiming, Vec<(u64, u64)>), PvaError> {
    assert_eq!(data.len() as u64, iv.length(), "one word per element");
    let mut unit = PvaUnit::new(config)?;
    let index_vec = Vector::unit_stride(index_base, iv.length())?;
    let reads: Vec<HostRequest> = index_vec
        .chunks(config.line_words)
        .map(|v| HostRequest::Read { vector: v })
        .collect();
    let phase1_cycles = unit.run(reads)?.cycles;
    // Data staging to the banks (STAGE_WRITE analogue) shares the
    // broadcast path: 2 (address, data) pairs per cycle over the two
    // bus halves -> one pair per cycle effective.
    let broadcast_cycles = iv.length();

    let g = config.geometry;
    let mut written = Vec::new();
    let mut phase2_cycles = 0u64;
    for b in 0..g.banks() {
        let bank = pva_core::BankId::new(b as usize);
        let claims: Vec<u64> = iv.claim(bank, &g).collect();
        if claims.is_empty() {
            continue;
        }
        let mut dev = Sdram::new(config.sdram);
        let mut cycles = 0u64;
        for &elem in &claims {
            let addr = iv.element(elem);
            let local = g.bank_local_addr(addr);
            let ia = config.sdram.map(local);
            loop {
                if dev.open_row(ia.bank) == Some(ia.row) {
                    let cmd = SdramCmd::Write {
                        bank: ia.bank,
                        col: ia.col,
                        data: data[elem as usize],
                        auto_precharge: false,
                    };
                    if dev.issue(cmd).is_ok() {
                        dev.tick();
                        cycles += 1;
                        break;
                    }
                } else if dev.open_row(ia.bank).is_some() {
                    let _ = dev.issue(SdramCmd::Precharge { bank: ia.bank });
                } else {
                    let _ = dev.issue(SdramCmd::Activate {
                        bank: ia.bank,
                        row: ia.row,
                    });
                }
                dev.tick();
                cycles += 1;
            }
        }
        for &elem in &claims {
            let local = g.bank_local_addr(iv.element(elem));
            written.push((elem, dev.peek(local)));
        }
        phase2_cycles = phase2_cycles.max(cycles);
    }
    let timing = IndirectTiming {
        phase1_cycles,
        broadcast_cycles,
        phase2_cycles,
        stage_cycles: 0,
        total_cycles: phase1_cycles + broadcast_cycles + phase2_cycles,
        data: Vec::new(),
    };
    Ok((timing, written))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdram::background_pattern;

    #[test]
    fn gathers_correct_data() {
        let cfg = PvaConfig::default();
        let offsets: Vec<u64> = vec![0, 17, 5, 1000, 48, 33, 2, 999];
        let iv = IndirectVector::new(0x4000, offsets).unwrap();
        let t = run_indirect_gather(cfg, &iv, 0).unwrap();
        for (i, addr) in iv.addresses().enumerate() {
            // Unwritten memory reads the background pattern of the
            // device-local address.
            let local = cfg.geometry.bank_local_addr(addr);
            assert_eq!(t.data[i], background_pattern(local), "element {i}");
        }
    }

    #[test]
    fn spread_claims_beat_clustered_claims() {
        // 32 elements spread over all banks vs. all in one bank: the
        // parallel phase should be much shorter when spread.
        let cfg = PvaConfig::default();
        let spread = IndirectVector::new(0, (0..32).collect()).unwrap();
        let clustered = IndirectVector::new(0, (0..32).map(|i| i * 16).collect()).unwrap();
        let ts = run_indirect_gather(cfg, &spread, 0).unwrap();
        let tc = run_indirect_gather(cfg, &clustered, 0).unwrap();
        assert!(
            ts.phase2_cycles * 4 < tc.phase2_cycles,
            "spread {} vs clustered {}",
            ts.phase2_cycles,
            tc.phase2_cycles
        );
    }

    #[test]
    fn scatter_writes_every_element() {
        let cfg = PvaConfig::default();
        let offsets: Vec<u64> = (0..24).map(|i| i * 11 % 512).collect();
        let iv = IndirectVector::new(0x800, offsets).unwrap();
        let data: Vec<u64> = (0..24).map(|i| 0x5000 + i).collect();
        let (t, written) = run_indirect_scatter(cfg, &iv, 0, &data).unwrap();
        assert!(t.total_cycles > 0);
        // Every claimed element carries its datum (offsets are unique
        // here, so no WAW ambiguity).
        assert_eq!(written.len(), 24);
        for (elem, val) in written {
            assert_eq!(val, data[elem as usize], "element {elem}");
        }
    }

    #[test]
    fn timing_components_sum() {
        let cfg = PvaConfig::default();
        let iv = IndirectVector::new(0, (0..16).map(|i| i * 3).collect()).unwrap();
        let t = run_indirect_gather(cfg, &iv, 0).unwrap();
        assert_eq!(
            t.total_cycles,
            t.phase1_cycles + t.broadcast_cycles + t.phase2_cycles + t.stage_cycles
        );
        assert_eq!(t.broadcast_cycles, 8);
    }
}
