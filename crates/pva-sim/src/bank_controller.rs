//! The Bank Controller (BC) of §5.2.2, one per external SDRAM bank.
//!
//! Subcomponents, mirroring Figure 6 of the paper:
//!
//! * **FirstHit Predict (FHP)** — watches vector commands broadcast on
//!   the BC bus, decides hit/miss for this bank via the PLA tables, and
//!   for power-of-two strides computes the first-hit address immediately
//!   (1 cycle).
//! * **Request FIFO / Register File (RQF/RF)** — queues hits awaiting
//!   service; as many entries as outstanding bus transactions.
//! * **FirstHit Calculate (FHC)** — the 2-cycle multiply-add that
//!   finishes address calculation for non-power-of-two strides, working
//!   in parallel with the scheduler.
//! * **Access Scheduler (SCHED)** with **Vector Contexts (VCs)** and
//!   **Scheduling Policy Units (SPUs)** — expands each request's address
//!   series by shift-and-add, reorders row activates / precharges /
//!   reads / writes across contexts (oldest first, daisy-chained), and
//!   drives the SDRAM.
//! * **Staging** — gathered read data is deposited into the shared
//!   [`TransactionTable`] (the model of the wired-OR
//!   transaction-complete lines); write data is pulled from the
//!   broadcast line buffer.
//!
//! Bypass paths (§5.2.3), the bus-polarity rule (§5.2.4), restimer-
//! enforced SDRAM timing (§5.2.5) and the row-management heuristic are
//! all modelled; each is switchable for the ablation benches.

use std::collections::VecDeque;
use std::sync::Arc;

use pva_core::{BankId, FastMap, FirstHit, K1Pla, LogicalView};
use sdram::{CmdClass, InternalAddr, Sdram, SdramCmd};

use crate::command::{OpKind, TxnId, VectorCommand};
use crate::config::{PvaConfig, RowPolicy};
use crate::trace_log::TraceEvent;
use crate::txn::TransactionTable;

/// Encodes (transaction, element index) into an SDRAM read tag.
fn tag_of(txn: TxnId, element: u64) -> u64 {
    ((txn.0 as u64) << 40) | element
}

/// Decodes an SDRAM read tag.
fn untag(tag: u64) -> (TxnId, u64) {
    (TxnId((tag >> 40) as u8), tag & ((1 << 40) - 1))
}

/// Row-address bit set on rows remapped away from a hard-failed
/// internal bank, so they cannot collide with the spare bank's own
/// rows (device row addresses are untruncated 64-bit values; real
/// hardware would burn one spare-region row bit the same way).
const REMAP_ROW_BIT: u64 = 1 << 40;

/// Cap on the exponential retry-backoff shift (`backoff << attempts`),
/// keeping the delay bounded and overflow-free.
const MAX_BACKOFF_SHIFT: u32 = 10;

/// Longest element run one CAS burst may cover (BL8 is the longest
/// burst any shipped generation declares); bounds the stack buffer the
/// scheduler assembles burst items in.
const MAX_COALESCE: usize = 8;

/// A poisoned read awaiting re-issue: the element is re-expanded as a
/// one-element vector context once `not_before` passes.
#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    txn: TxnId,
    element: u64,
    addr: u64,
    /// Earliest cycle the retry may re-enter a vector context.
    not_before: u64,
}

/// The bank's first-hit logic: a single PLA for word interleave, or
/// the §4.1.3/§4.3.1 arrangement of `N` logical-bank copies for block
/// interleave ("replicating the FirstHit logic N times in each bank
/// controller").
#[derive(Debug, Clone)]
enum HitLogic {
    /// Word-interleaved: one K1 PLA, shift-and-add expansion.
    Word(Arc<K1Pla>),
    /// Block-interleaved: N logical first-hit units whose sorted merge
    /// gives this bank's element indices.
    Logical(Arc<LogicalView>),
}

/// A register-file entry: a vector request that hit this bank, plus its
/// address-calculation state (the ACC flag of §5.2.2).
#[derive(Debug, Clone)]
struct RfEntry {
    cmd: VectorCommand,
    /// First element index this bank holds.
    first_index: u64,
    /// Element-index step between this bank's elements (Theorem 4.4).
    index_delta: u64,
    /// First-hit word address; meaningful once `addr_ready`.
    first_addr: u64,
    /// The ACC flag: address calculation complete.
    addr_ready: bool,
    /// FHC multiply-add cycles remaining when `!addr_ready`.
    fhc_cycles_left: u32,
    /// Earliest cycle the scheduler may consume this entry (models FHP /
    /// FIFO / bypass latencies).
    injectable_at: u64,
    /// Dense line to scatter, for writes.
    write_line: Option<Arc<Vec<u64>>>,
    /// Block-interleave only: the merged element-index list of this
    /// bank's N logical first-hit units.
    indices: Option<Arc<Vec<u64>>>,
}

/// A vector context: one request being actively expanded against the
/// SDRAM.
#[derive(Debug, Clone)]
struct VectorContext {
    txn: TxnId,
    kind: OpKind,
    /// Current global word address.
    addr: u64,
    /// Address step per element served: `V.S << (m - s)` (§4.2 step 7).
    addr_step: u64,
    /// Current element index within the vector.
    element: u64,
    /// Element-index step.
    index_delta: u64,
    /// Elements remaining for this bank (including the current one).
    remaining: u64,
    /// Whether the very first operation of this context has issued yet
    /// (drives the autoprecharge predictor).
    first_op_done: bool,
    write_line: Option<Arc<Vec<u64>>>,
    /// Block-interleave only: explicit index list plus cursor (the
    /// hardware holds N per-logical-bank shift-and-add units instead).
    indices: Option<Arc<Vec<u64>>>,
    pos: usize,
    /// Vector base and stride, for index-list address generation.
    base: u64,
    stride: u64,
    /// Cached internal-bank/row/column of `addr` (post-remap). The
    /// mapping inputs are fixed per run (geometry, interleave, the
    /// configured hard-failed bank), so this only changes when `addr`
    /// does — maintained at context creation and element advance, and
    /// asserted against a fresh mapping in debug builds.
    target: (u32, u64, u64),
}

/// Per-bank-controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BcStats {
    /// Commands this bank hit on.
    pub requests_queued: u64,
    /// Elements read from SDRAM.
    pub elements_read: u64,
    /// Elements written to SDRAM.
    pub elements_written: u64,
    /// Bus turnaround (polarity-reversal) stalls.
    pub turnarounds: u64,
    /// Cycles at least one VC was occupied.
    pub busy_cycles: u64,
    /// Accesses that found their row already open (row-buffer hits).
    pub row_hits: u64,
    /// Activates issued (row opens).
    pub activates: u64,
    /// Poisoned reads re-issued (bounded retry with backoff).
    pub read_retries: u64,
    /// Elements whose retries were exhausted and whose (bad) data was
    /// deposited flagged instead.
    pub retries_exhausted: u64,
    /// Accesses remapped away from a hard-failed internal bank into its
    /// spare (graceful degradation).
    pub remapped_accesses: u64,
    /// CAS commands whose bank group differed from the previous CAS on
    /// this channel (the short tCCD_S gate applied instead of tCCD_L).
    /// Always 0 on 1-group parts.
    pub group_switches: u64,
    /// CAS bursts that covered more than one element (BL4/BL8
    /// coalescing of adjacent same-row elements). Always 0 on
    /// burst-length-1 parts.
    pub coalesced_bursts: u64,
    /// Cycles phase A held ACTIVATEs back from the tFAW window's last
    /// free slot so a timing-legal CAS could issue instead. Always 0
    /// when tFAW is 0.
    pub deferred_activates: u64,
}

impl BcStats {
    /// Adds `other`'s counters into `self` — aggregation across the
    /// controllers of a multi-bank system.
    pub fn merge(&mut self, other: &BcStats) {
        self.requests_queued += other.requests_queued;
        self.elements_read += other.elements_read;
        self.elements_written += other.elements_written;
        self.turnarounds += other.turnarounds;
        self.busy_cycles += other.busy_cycles;
        self.row_hits += other.row_hits;
        self.activates += other.activates;
        self.read_retries += other.read_retries;
        self.retries_exhausted += other.retries_exhausted;
        self.remapped_accesses += other.remapped_accesses;
        self.group_switches += other.group_switches;
        self.coalesced_bursts += other.coalesced_bursts;
        self.deferred_activates += other.deferred_activates;
    }
}

/// One bank controller: parallelizing logic + scheduler + one SDRAM
/// device. `Clone` exists for the debug-build wake-soundness oracle,
/// which replays a cloned controller cycle-by-cycle across every
/// window the event loop is about to skip.
#[derive(Debug, Clone)]
pub struct BankController {
    bank: BankId,
    config: PvaConfig,
    hit_logic: HitLogic,
    fifo: VecDeque<RfEntry>,
    vcs: VecDeque<VectorContext>,
    device: Sdram,
    /// Last data-transfer direction on this bank's data bus.
    data_polarity: Option<OpKind>,
    /// Bank group of the last CAS accepted by this controller's device
    /// (`None` before the first). The generation-aware issue policy
    /// prefers CAS candidates from a *different* group, so the
    /// channel's short tCCD_S gate applies instead of tCCD_L.
    last_cas_group: Option<u32>,
    /// Turnaround dead cycles remaining.
    turnaround_left: u32,
    /// One-bit autoprecharge predictor per internal bank (§5.2.2).
    autoprecharge_predict: Vec<bool>,
    /// Last row that was open in each internal bank (survives closes).
    last_row: Vec<Option<u64>>,
    /// Four-bit hit/miss history per internal bank (Alpha 21174 style;
    /// only consulted under `RowPolicy::AlphaHistory`).
    row_history: Vec<u8>,
    stats: BcStats,
    /// Poisoned reads waiting out their backoff before re-issue.
    retries: Vec<PendingRetry>,
    /// Retry attempts so far per (transaction, element).
    retry_attempts: FastMap<(u8, u64), u32>,
    /// Base and stride of each observed vector command, kept while its
    /// transaction may still need element addresses recomputed for
    /// retries.
    vec_meta: FastMap<u8, (u64, u64)>,
    /// When the last [`tick`](BankController::tick) did no work: the
    /// earliest future cycle at which this controller could act (`None`
    /// = no pending event, or the tick did work). Consumed by the
    /// unit's next-event fast path immediately after the tick.
    wake_hint: Option<u64>,
    /// Scratch for [`schedule`](BankController::schedule)'s per-VC
    /// target list (reused across cycles when `fast_sim` is on).
    targets_scratch: Vec<(u32, u64, u64)>,
    /// Scratch for the per-cycle issue-window index list.
    window_scratch: Vec<usize>,
    /// Per-cycle `row_hits` increment of the last tick, when that tick
    /// changed *nothing but* the row-hit counter (a blocked access
    /// observing its open row). Such a tick replays identically — same
    /// increment included — every cycle until the wake hint, so the
    /// fast path applies the increment arithmetically per skipped
    /// cycle in [`advance`](BankController::advance).
    replay_row_hits: u64,
    /// FIFO entries still waiting on the FHC multiply-add; lets the
    /// fast path skip the per-cycle FIFO scan once all are ready.
    fhc_pending: usize,
    /// Trace events accumulated since the last drain (only populated
    /// when `config.record_trace`).
    events: Vec<TraceEvent>,
}

impl BankController {
    /// Creates the controller for `bank` on a word-interleaved system.
    pub fn new(bank: BankId, config: PvaConfig, pla: Arc<K1Pla>) -> Self {
        Self::with_hit_logic(bank, config, HitLogic::Word(pla))
    }

    /// Creates the controller for `bank` on a block-interleaved system:
    /// `N` copies of the first-hit logic per controller (§4.3.1).
    pub fn new_block_interleaved(bank: BankId, config: PvaConfig, view: Arc<LogicalView>) -> Self {
        Self::with_hit_logic(bank, config, HitLogic::Logical(view))
    }

    fn with_hit_logic(bank: BankId, config: PvaConfig, hit_logic: HitLogic) -> Self {
        let ib = config.sdram.total_row_buffers() as usize;
        let mut device = Sdram::new(config.sdram);
        // Each controller's device draws an independent (but seed-
        // reproducible) transient-fault stream.
        device.reseed_faults(bank.index() as u64 + 1);
        BankController {
            bank,
            config,
            hit_logic,
            fifo: VecDeque::new(),
            vcs: VecDeque::new(),
            device,
            data_polarity: None,
            last_cas_group: None,
            turnaround_left: 0,
            autoprecharge_predict: vec![false; ib],
            last_row: vec![None; ib],
            row_history: vec![0; ib],
            stats: BcStats::default(),
            retries: Vec::new(),
            retry_attempts: FastMap::default(),
            vec_meta: FastMap::default(),
            wake_hint: None,
            targets_scratch: Vec::new(),
            window_scratch: Vec::new(),
            replay_row_hits: 0,
            fhc_pending: 0,
            events: Vec::new(),
        }
    }

    /// Drains the accumulated trace events.
    pub fn drain_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Logs an SDRAM operation when tracing is enabled. The mnemonic
    /// comes from the shared [`CmdClass`] table, so the trace log, the
    /// VCD exporter and the device FSM can never drift apart.
    fn log_op(&mut self, op: CmdClass, internal_bank: u32, row: u64) {
        if self.config.record_trace {
            self.events.push(TraceEvent::BankOp {
                cycle: self.device.now(),
                bank: self.bank.index(),
                op: op.mnemonic(),
                internal_bank,
                row,
            });
        }
    }

    /// The bank this controller serves.
    pub const fn bank(&self) -> BankId {
        self.bank
    }

    /// Statistics so far.
    pub const fn stats(&self) -> &BcStats {
        &self.stats
    }

    /// The SDRAM device (for functional inspection in tests).
    pub const fn device(&self) -> &Sdram {
        &self.device
    }

    /// Mutable device access (test preloading).
    pub fn device_mut(&mut self) -> &mut Sdram {
        &mut self.device
    }

    /// Whether this controller has no queued or active work.
    pub fn idle(&self) -> bool {
        self.fifo.is_empty()
            && self.vcs.is_empty()
            && self.retries.is_empty()
            && !self.device.has_in_flight()
    }

    /// Stronger than [`idle`](BankController::idle): nothing queued AND
    /// the device itself is fully at rest, so a tick can only replay
    /// the same empty decision. The unit's event loop uses this to park
    /// a controller with no wake hint until a broadcast re-arms it.
    pub(crate) fn quiet(&self) -> bool {
        self.fifo.is_empty()
            && self.vcs.is_empty()
            && self.retries.is_empty()
            && self.turnaround_left == 0
            && self.device.quiet()
    }

    /// FHP: observes a vector command broadcast at cycle `now`. Returns
    /// the number of elements this bank will serve (0 = miss, request
    /// not queued).
    pub fn observe_command(
        &mut self,
        cmd: &VectorCommand,
        write_line: Option<Arc<Vec<u64>>>,
        now: u64,
    ) -> u64 {
        let v = &cmd.vector;
        // Remember the vector's base/stride so a poisoned element can be
        // re-expanded into a retry context later (recorded even on a
        // miss: the map is keyed by the 8-bit transaction id, so it
        // stays bounded).
        self.vec_meta.insert(cmd.txn.0, (v.base(), v.stride()));
        let (first, index_delta, count, indices) = match &self.hit_logic {
            HitLogic::Word(pla) => {
                let first = match pla.first_hit(v, self.bank) {
                    FirstHit::Hit(k) => k,
                    FirstHit::Miss => return 0,
                };
                let delta = pla.next_hit(v.stride());
                // pva-lint: allow(nonconst-div): delta = 2^(m-s) by Theorem 4.4; the hardware subvector counter shifts
                let count = (v.length() - first).div_ceil(delta);
                (first, delta, count, None)
            }
            HitLogic::Logical(view) => {
                let idx: Vec<u64> = view.subvector_indices(v, self.bank).collect();
                if idx.is_empty() {
                    return 0;
                }
                let first = idx[0];
                let count = idx.len() as u64;
                (first, 1, count, Some(Arc::new(idx)))
            }
        };
        let pow2 = v.stride().is_power_of_two();
        let bypass = self.config.options.bypass_paths
            && self.fifo.is_empty()
            && self.vcs.len() < self.config.vector_contexts;
        // Pipeline latencies (§5.2.3): FHP enqueues at the end of the
        // broadcast cycle. Power-of-two strides have their address ready
        // immediately; others wait for the FHC multiply-add. The bypass
        // paths save the FIFO write-back/dequeue cycle when the
        // controller is idle.
        let (addr_ready, fhc_left, injectable_at) = if pow2 {
            (true, 0, if bypass { now + 1 } else { now + 2 })
        } else {
            let fhc = self.config.fhc_latency;
            (
                false,
                fhc,
                if bypass {
                    now + 1 + fhc as u64
                } else {
                    now + 2 + fhc as u64
                },
            )
        };
        let first_addr = v.base() + v.stride() * first;
        self.fifo.push_back(RfEntry {
            cmd: *cmd,
            first_index: first,
            index_delta,
            first_addr,
            addr_ready,
            fhc_cycles_left: fhc_left,
            injectable_at,
            write_line,
            indices,
        });
        debug_assert!(
            self.fifo.len() <= self.config.request_fifo_entries,
            "register file sized to outstanding transactions can never overflow"
        );
        if !addr_ready {
            self.fhc_pending += 1;
        }
        self.stats.requests_queued += 1;
        count
    }

    /// Advances the controller one cycle: FHC progress, VC injection,
    /// SPU scheduling, SDRAM issue, data return. Returns whether the
    /// controller changed any state beyond pure counter advancement —
    /// `false` means the identical decision replays every cycle until
    /// the event reported by [`wake_hint`](BankController::wake_hint).
    pub fn tick(&mut self, now: u64, txns: &mut TransactionTable) -> bool {
        // Fully idle controllers dominate single-bank strides (15 of 16
        // every cycle on stride 16). With nothing queued and the device
        // at rest the full tick below is provably a no-op, so only the
        // clock and the wake hint need maintaining.
        if self.config.fast_sim && self.quiet() {
            self.replay_row_hits = 0;
            self.wake_hint = self.compute_wake(now);
            self.device.tick();
            return false;
        }

        let mut did_work = false;

        // 1. Return data that reached the pins this cycle. Poisoned
        //    words (ECC-uncorrectable or hard-failed bank) are retried
        //    with exponential backoff up to the configured bound, then
        //    deposited flagged so the transaction still completes.
        if self.config.fast_sim {
            while let Some(ready) = self.device.pop_ready() {
                self.handle_ready(ready, now, txns);
                did_work = true;
            }
        } else {
            for ready in self.device.take_ready_data() {
                self.handle_ready(ready, now, txns);
                did_work = true;
            }
        }

        // 2. FHC: one multiply-add in flight at a time, oldest first
        //    (the workptr scan of §5.2.2), overlapped with scheduling.
        //    The pending count proves the scan empty without walking
        //    the FIFO (the fast path skips it; the reference model
        //    keeps the per-cycle scan).
        if self.fhc_pending > 0 || !self.config.fast_sim {
            if let Some(entry) = self.fifo.iter_mut().find(|e| !e.addr_ready) {
                entry.fhc_cycles_left = entry.fhc_cycles_left.saturating_sub(1);
                if entry.fhc_cycles_left == 0 {
                    entry.addr_ready = true;
                    self.fhc_pending -= 1;
                }
                did_work = true;
            }
        }

        // 3a. Re-inject one due retry as a single-element vector context
        //     (retries take priority over fresh requests: they hold up a
        //     transaction that is otherwise nearly complete).
        if self.vcs.len() < self.config.vector_contexts {
            if let Some(pos) = self.retries.iter().position(|r| r.not_before <= now) {
                let r = self.retries.swap_remove(pos);
                let target = self.target_of_addr(r.addr);
                self.vcs.push_back(VectorContext {
                    txn: r.txn,
                    kind: OpKind::Read,
                    addr: r.addr,
                    addr_step: 0,
                    element: r.element,
                    index_delta: 0,
                    remaining: 1,
                    first_op_done: false,
                    write_line: None,
                    indices: None,
                    pos: 0,
                    base: 0,
                    stride: 0,
                    target,
                });
                did_work = true;
            }
        }

        // 3b. Inject the FIFO head into a free vector context (in order).
        if self.vcs.len() < self.config.vector_contexts {
            let consumable = self
                .fifo
                .front()
                .is_some_and(|e| e.addr_ready && e.injectable_at <= now);
            if consumable {
                let e = self.fifo.pop_front().expect("head exists");
                let v = e.cmd.vector;
                let remaining = match &e.indices {
                    Some(idx) => idx.len() as u64,
                    // pva-lint: allow(nonconst-div): index_delta = 2^(m-s) by Theorem 4.4; a shift in hardware
                    None => (v.length() - e.first_index).div_ceil(e.index_delta),
                };
                let target = self.target_of_addr(e.first_addr);
                self.vcs.push_back(VectorContext {
                    txn: e.cmd.txn,
                    kind: e.cmd.kind,
                    addr: e.first_addr,
                    addr_step: v.stride() * e.index_delta,
                    element: e.first_index,
                    index_delta: e.index_delta,
                    remaining,
                    first_op_done: false,
                    write_line: e.write_line,
                    indices: e.indices,
                    pos: 0,
                    base: v.base(),
                    stride: v.stride(),
                    target,
                });
                did_work = true;
            }
        }

        if !self.vcs.is_empty() {
            self.stats.busy_cycles += 1;
        }

        // 4. SPU scheduling: pick at most one SDRAM command. A due
        //    periodic refresh preempts normal work (§2.2: the contents
        //    must be refreshed typically every 64 ms).
        let row_hits_before = self.stats.row_hits;
        if self.turnaround_left > 0 {
            self.turnaround_left -= 1;
            did_work = true;
        } else if !self.service_refresh() {
            self.schedule(txns);
        }
        // A command acceptance (from schedule *or* service_refresh) is
        // work; service_refresh "owning the slot" without issuing is
        // not — that state replays until the blocking timer expires.
        // Scheduling can also mutate state without issuing: starting a
        // bus turnaround, or observing a row hit on a still-blocked
        // access — both count as work so the skip logic never elides a
        // cycle whose replay would not be a pure no-op.
        did_work |= self.device.command_issued_this_cycle() || self.turnaround_left > 0;
        let row_hit_delta = self.stats.row_hits - row_hits_before;

        // The hint must see the device *before* its tick: a restimer at
        // 1 decrements to 0 now, and the next cycle is the first to see
        // it available. A tick whose only effect was the row-hit
        // observation still publishes a hint: the observation replays —
        // counter increment included — every cycle until the hint, and
        // `advance` applies the skipped increments.
        self.replay_row_hits = if did_work { 0 } else { row_hit_delta };
        self.wake_hint = if did_work {
            None
        } else {
            self.compute_wake(now)
        };

        // 5. Clock the device.
        self.device.tick();
        did_work || row_hit_delta > 0
    }

    /// Routes one returned data word: deposit, or retry if poisoned.
    fn handle_ready(&mut self, ready: sdram::ReadReturn, now: u64, txns: &mut TransactionTable) {
        let (txn, element) = untag(ready.tag);
        if ready.poisoned {
            let key = (txn.0, element);
            let attempts = self.retry_attempts.get(&key).copied().unwrap_or(0);
            if attempts < self.config.max_read_retries {
                let (base, stride) = self.vec_meta[&txn.0];
                let backoff =
                    (self.config.retry_backoff_cycles as u64) << attempts.min(MAX_BACKOFF_SHIFT);
                self.retry_attempts.insert(key, attempts + 1);
                self.retries.push(PendingRetry {
                    txn,
                    element,
                    addr: base + stride * element,
                    not_before: now + backoff,
                });
                self.stats.read_retries += 1;
            } else {
                self.retry_attempts.remove(&key);
                self.stats.retries_exhausted += 1;
                txns.deposit_faulted(txn, element, ready.data);
            }
        } else {
            // Clearing a retry record only matters if one exists; the
            // fast path skips the hash on the (overwhelmingly common)
            // clean-data return when no retries are outstanding at all.
            if !self.config.fast_sim || !self.retry_attempts.is_empty() {
                self.retry_attempts.remove(&(txn.0, element));
            }
            txns.deposit(txn, element, ready.data);
        }
    }

    /// The wake hint produced by the last tick: `Some(cycle)` when the
    /// tick did no work and `cycle` is the earliest tick that could —
    /// every tick in between is guaranteed to replay the same no-op
    /// decision. Valid only immediately after the producing tick.
    pub const fn wake_hint(&self) -> Option<u64> {
        self.wake_hint
    }

    /// Earliest future cycle at which this controller could act, given
    /// that the tick in progress did no work. Must be called *before*
    /// the device tick (the device clock still reads the current
    /// cycle). `None` when no event is pending at all.
    fn compute_wake(&self, now: u64) -> Option<u64> {
        let mut wake: Option<u64> = None;
        let mut consider = |at: u64| {
            wake = Some(match wake {
                Some(w) if w <= at => w,
                _ => at,
            });
        };
        // Injection candidates only matter while a context slot is
        // free; when all slots are busy, the unblocking event is a
        // device-side one (covered below).
        if self.vcs.len() < self.config.vector_contexts {
            if let Some(e) = self.fifo.front() {
                consider(e.injectable_at);
            }
            for r in &self.retries {
                consider(r.not_before);
            }
        }
        if let Some(at) = self.device.next_data_at() {
            consider(at);
        }
        // Precise scheduler wakes: for each context, the expiry of
        // exactly the timers gating its next action (activate when its
        // bank is closed, access when its row is open, precharge when
        // another row occupies the bank). Early wakes are harmless (the
        // tick replays as a no-op); a wake in the past means the action
        // is timing-legal already and only a non-timer condition blocks
        // it — every such condition is resolved by another context's
        // work tick or by the refresh poll below, so it contributes no
        // candidate. Waking on *any* armed timer would also be correct
        // but triggers a no-op tick per unrelated expiry.
        for vc in &self.vcs {
            let (ib, row, _) = self.target_of(vc);
            let at = match self.device.open_row(ib) {
                None => self.device.activate_ready_at(ib),
                Some(open) if open == row => self.device.access_ready_at(ib),
                Some(_) => self.device.precharge_ready_at(ib),
            };
            if at > now {
                consider(at);
            }
        }
        // Channel-gate expiries (tCCD per bank group, tRRD, the tFAW
        // window slots). The per-context arms above already fold each
        // context's *own* channel gates into access_ready_at /
        // activate_ready_at; this arm additionally covers the
        // generation-aware policy's channel-global decisions — the
        // tFAW slot count behind `should_defer_activate` and the group
        // preference around `last_cas_group` — whose inputs change
        // exactly when a channel gate expires. `None` on SDR-era parts
        // (the channel timers never arm), so the event schedule there
        // is untouched.
        if let Some(at) = self.device.channel_next_expiry() {
            if at > now {
                consider(at);
            }
        }
        if let Some(at) = self.device.next_refresh_wake() {
            consider(at);
        }
        // Candidates are at or after the next cycle by construction (a
        // due event would have been work this tick); clamp defensively.
        wake.map(|w| w.max(now + 1))
    }

    /// Bulk-advances the controller across `cycles` quiescent cycles —
    /// equivalent to `cycles` ticks that each did no work. Only the
    /// pure counters move: busy-cycle stats and the device clock.
    pub fn advance(&mut self, cycles: u64) {
        if !self.vcs.is_empty() {
            self.stats.busy_cycles += cycles;
        }
        // Skipped replays of a blocked-access observation each count
        // their row hit, exactly as the reference's per-cycle ticks do.
        self.stats.row_hits += self.replay_row_hits * cycles;
        self.device.advance(cycles);
    }

    /// Drives the device toward a due AUTO REFRESH: closes open rows,
    /// then issues the refresh. Returns `true` while refresh handling
    /// owns the command slot this cycle.
    fn service_refresh(&mut self) -> bool {
        if !self.device.refresh_due() {
            return false;
        }
        for ib in 0..self.config.sdram.total_row_buffers() {
            if self.device.open_row(ib).is_some() {
                let cmd = SdramCmd::Precharge { bank: ib };
                if self.device.can_issue(&cmd).is_ok() {
                    self.device.issue(cmd).expect("validated");
                }
                // Either precharged or waiting out tRAS/tWR: refresh
                // still pending, keep the slot.
                return true;
            }
        }
        // All rows closed: refresh as soon as tRP clears.
        if self.device.issue(SdramCmd::Refresh).is_ok() {
            self.log_op(CmdClass::Refresh, u32::MAX, 0);
        }
        true
    }

    /// Internal-bank/row/column coordinates of a context's current
    /// element, after any degradation remap.
    fn target_of(&self, vc: &VectorContext) -> (u32, u64, u64) {
        self.target_of_addr(vc.addr)
    }

    /// [`target_of`](BankController::target_of) for a raw word address.
    fn target_of_addr(&self, addr: u64) -> (u32, u64, u64) {
        let local = self.config.geometry.bank_local_addr(addr);
        self.remap(self.config.sdram.map(local))
    }

    /// Graceful degradation: accesses that map to a hard-failed internal
    /// bank are serialized through the next healthy one, in a spare row
    /// region tagged with [`REMAP_ROW_BIT`]. Disabled by config or when
    /// the device has a single row buffer (nowhere to remap to).
    fn remap(&self, ia: InternalAddr) -> (u32, u64, u64) {
        if self.config.degradation {
            if let Some(dead) = self.device.hard_failed_bank() {
                let total = self.config.sdram.total_row_buffers();
                if total > 1 && ia.bank == dead {
                    let spare = if dead + 1 >= total { 0 } else { dead + 1 };
                    return (spare, ia.row | REMAP_ROW_BIT, ia.col);
                }
            }
        }
        (ia.bank, ia.row, ia.col)
    }

    /// The §5.2.2 scheduling pass: promote activates/precharges of
    /// blocked contexts (oldest first), else issue the highest-priority
    /// ready read/write that respects the polarity rule.
    fn schedule(&mut self, txns: &mut TransactionTable) {
        // Precompute VC targets. The fast path keeps the buffer's
        // capacity across cycles; the reference path reallocates each
        // call, preserving the original model for baseline measurement.
        let mut targets = std::mem::take(&mut self.targets_scratch);
        targets.clear();
        if self.config.fast_sim {
            targets.extend(self.vcs.iter().map(|vc| vc.target));
            debug_assert!(
                self.vcs.iter().all(|vc| vc.target == self.target_of(vc)),
                "cached VC target diverged from a fresh mapping"
            );
        } else {
            targets.extend(self.vcs.iter().map(|vc| self.target_of(vc)));
        }
        self.schedule_with(&targets, txns);
        if self.config.fast_sim {
            self.targets_scratch = targets;
        }
    }

    /// The body of [`schedule`](BankController::schedule), split so the
    /// target list can live outside `self` during the borrow.
    fn schedule_with(&mut self, targets: &[(u32, u64, u64)], txns: &mut TransactionTable) {
        // Polarity rule of §5.2.4: a VC may issue a read/write only if no
        // older VC carries the opposite direction (channel-aware parts
        // relax this for provably disjoint contexts — see
        // `build_issue_window`). Computed up front: phase A must know
        // which VCs can actually consume an open row.
        let mut win = std::mem::take(&mut self.window_scratch);
        win.clear();
        self.build_issue_window(&mut win);
        self.schedule_in_window(targets, &win, txns);
        self.window_scratch = win;
    }

    /// [`schedule_with`](BankController::schedule_with) continued, with
    /// the issue window materialized as VC indices (oldest first).
    fn schedule_in_window(
        &mut self,
        targets: &[(u32, u64, u64)],
        window: &[usize],
        txns: &mut TransactionTable,
    ) {
        // tFAW-aware activate pacing (generation-aware policy): decided
        // once per cycle, before phase A runs.
        let defer = self.gen_aware() && self.should_defer_activate(targets, window);
        let mut defer_counted = false;

        // Phase A: row opens / precharges for blocked VCs ("promote row
        // opens and precharges above read and write operations, as long
        // as they do not conflict with the open rows being used by some
        // other VC"). Window members go first: they can consume a row
        // this cycle, and when the polarity anchor has bypassed the
        // oldest VC this ordering is what keeps an out-of-window VC
        // from re-activating the row the window just precharged (a
        // livelock otherwise). With the classic prefix window the
        // order is exactly age order, as before.
        if self.config.options.promote_opens || self.first_ready(targets, window).is_none() {
            for &i in window {
                if self.try_row_management(i, targets, window, defer, &mut defer_counted) {
                    return;
                }
            }
            for i in 0..self.vcs.len() {
                if window.contains(&i) {
                    continue;
                }
                if self.try_row_management(i, targets, window, defer, &mut defer_counted) {
                    return;
                }
            }
        }

        // Phase B: reads/writes within the polarity window. On
        // multi-group parts the generation-aware policy tries CAS
        // candidates whose bank group differs from the last CAS first
        // (`last_cas_group`): a group switch is gated by the short
        // tCCD_S, a repeat by the long tCCD_L. On 1-group parts (and
        // before the first CAS) every candidate is equally preferred
        // and the passes collapse to arrival order.
        let switch_from = if self.gen_aware() && self.config.sdram.bank_groups > 1 {
            self.last_cas_group
        } else {
            None
        };
        if let Some(last) = switch_from {
            for &i in window {
                if self.config.sdram.bank_group_of(targets[i].0) != last
                    && self.try_issue_access(i, targets, txns)
                {
                    return;
                }
            }
            for &i in window {
                if self.config.sdram.bank_group_of(targets[i].0) == last
                    && self.try_issue_access(i, targets, txns)
                {
                    return;
                }
            }
            return;
        }
        for &i in window {
            if self.try_issue_access(i, targets, txns) {
                return;
            }
        }
    }

    /// One phase-A attempt on context `i`: open its row if the bank is
    /// closed, or precharge a conflicting row no window VC still uses.
    /// Returns whether a command was issued (the cycle's slot is
    /// spent).
    fn try_row_management(
        &mut self,
        i: usize,
        targets: &[(u32, u64, u64)],
        window: &[usize],
        defer: bool,
        defer_counted: &mut bool,
    ) -> bool {
        let (ib, row, _) = targets[i];
        match self.device.open_row(ib) {
            None => {
                // Don't burn the tFAW window's last free slot while a
                // timing-legal CAS is waiting: phase B issues the CAS
                // this cycle, the activate follows once a slot frees.
                if defer {
                    if !*defer_counted {
                        self.stats.deferred_activates += 1;
                        *defer_counted = true;
                    }
                    return false;
                }
                // issue() validates and rejects without side effects,
                // so one call both checks and commits.
                let cmd = SdramCmd::Activate { bank: ib, row };
                if self.device.issue(cmd).is_ok() {
                    // Predictor is set on the very first operation of a
                    // new vector context (§5.2.2), using the last row
                    // open *before* this activate.
                    if !self.vcs[i].first_op_done {
                        self.set_predictor(i, ib, row);
                        self.vcs[i].first_op_done = true;
                    }
                    self.last_row[ib as usize] = Some(row);
                    self.stats.activates += 1;
                    self.log_op(CmdClass::Activate, ib, row);
                    return true;
                }
            }
            Some(open) if open != row => {
                // bank_hit_predict: some other VC that can actually
                // issue (inside the polarity window) currently targets
                // the open row — do not close it. VCs outside the
                // window cannot consume the row yet, and honouring
                // their hits could deadlock against the polarity rule.
                let other_hits = window
                    .iter()
                    .any(|&j| j != i && targets[j].0 == ib && targets[j].1 == open);
                let cmd = SdramCmd::Precharge { bank: ib };
                if !other_hits && self.device.issue(cmd).is_ok() {
                    self.log_op(CmdClass::Precharge, ib, open);
                    return true;
                }
            }
            Some(_) => {}
        }
        false
    }

    /// Materializes the issue window for this cycle: the VC indices
    /// (oldest first) the polarity rule permits to read/write.
    ///
    /// Base rule (§5.2.4): the oldest-prefix of one polarity — a VC may
    /// not issue while an older VC carries the opposite direction. With
    /// `out_of_order` off the window is just the oldest VC.
    ///
    /// Channel-aware extension (FR-FCFS-style, after Rixner et al.): on
    /// parts that declare channel structure, an opposite-polarity VC
    /// does not end the window when every access it still owes is
    /// provably disjoint from the candidates behind it — tested
    /// conservatively on word-address bounding ranges, so reordering
    /// across it commutes. This is what lets alternating read/write
    /// streams (dense copy) batch same-polarity accesses: the row stays
    /// open across the batch and the bus turns around once per batch
    /// instead of once per vector. SDR-era parts declare no channel
    /// structure and keep strict arrival order, bit-identical to the
    /// goldens.
    fn build_issue_window(&self, win: &mut Vec<usize>) {
        let Some(front) = self.vcs.front().map(|vc| vc.kind) else {
            return;
        };
        if !self.config.options.out_of_order {
            win.push(0);
            return;
        }
        if !(self.gen_aware() && self.config.sdram.declares_channel_structure()) {
            win.extend((0..self.vcs.len()).take_while(|&i| self.vcs[i].kind == front));
            return;
        }
        // Polarity anchor: stay on the bus's current direction while
        // admissible work of that direction exists — this is what turns
        // an alternating R/W arrival stream into same-polarity batches.
        // Starvation is bounded: a bypassed context holds its
        // transaction slot, so a persistently skipped polarity
        // eventually owns every slot and forces the anchor over.
        if let Some(p) = self.data_polarity {
            self.window_walk(p, win);
            if !win.is_empty() {
                return;
            }
        }
        if self.data_polarity != Some(front) {
            self.window_walk(front, win);
        }
    }

    /// One pass of the channel-aware window walk for a given anchor
    /// polarity: collect anchor-polarity VCs oldest-first, skipping
    /// opposite-polarity VCs whose remaining accesses are provably
    /// (range-)disjoint from every candidate admitted after them.
    fn window_walk(&self, anchor: OpKind, win: &mut Vec<usize>) {
        // Bounding ranges of the opposite-polarity VCs skipped so far.
        // A later anchor-polarity VC joins the window only if it
        // overlaps none of them (ranges are inclusive; `skipped` is
        // bounded by the transaction-id space, so no allocation).
        let mut skipped = [(0u64, 0u64); 16];
        let mut n_skipped = 0usize;
        for (i, vc) in self.vcs.iter().enumerate() {
            let range = Self::addr_range(vc);
            if vc.kind == anchor {
                let disjoint = skipped[..n_skipped]
                    .iter()
                    .all(|&(lo, hi)| range.1 < lo || hi < range.0);
                if disjoint {
                    win.push(i);
                } else {
                    // A real hazard: nothing younger may bypass either.
                    break;
                }
            } else {
                if n_skipped == skipped.len() {
                    break;
                }
                skipped[n_skipped] = range;
                n_skipped += 1;
            }
        }
    }

    /// Inclusive word-address bounding range of every element a context
    /// still owes. Exact for strided contexts (an arithmetic
    /// progression); for index-list contexts the remaining indices are
    /// scanned (bounded by the command length).
    fn addr_range(vc: &VectorContext) -> (u64, u64) {
        match &vc.indices {
            Some(idx) => {
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                for &e in &idx[vc.pos..] {
                    let a = vc.base + vc.stride * e;
                    lo = lo.min(a);
                    hi = hi.max(a);
                }
                (lo, hi)
            }
            None => (vc.addr, vc.addr + vc.addr_step * (vc.remaining - 1)),
        }
    }

    /// Whether the generation-aware issue policy is enabled. The policy
    /// additionally degenerates to arrival order wherever the device
    /// declares no channel structure (1 bank group, burst length 1,
    /// tFAW 0) — the SDR-era presets — which the golden-identity tests
    /// pin.
    const fn gen_aware(&self) -> bool {
        self.config.options.generation_aware
    }

    /// Whether phase A should hold ACTIVATEs back this cycle: the tFAW
    /// window has exactly one slot free (an activate now closes the
    /// window for the rest of its span) while some context inside the
    /// polarity window has a CAS that is timing-legal right now.
    /// Deferring lets the CAS through this cycle; the activate stream
    /// loses at most the one cycle it must eventually spend waiting on
    /// the window anyway. Never true when tFAW is 0 (the slots read 0
    /// free... all four free) or while tRRD gates activates regardless.
    fn should_defer_activate(&self, targets: &[(u32, u64, u64)], window: &[usize]) -> bool {
        if self.config.sdram.t_faw == 0 || self.device.channel_rrd_remaining() > 0 {
            return false;
        }
        let free = self
            .device
            .channel_faw_remaining()
            .iter()
            .filter(|&&r| r == 0)
            .count();
        if free != 1 {
            return false;
        }
        let now = self.device.now();
        window.iter().any(|&i| {
            let (ib, row, _) = targets[i];
            self.device.open_row(ib) == Some(row) && self.device.access_ready_at(ib) <= now
        })
    }

    /// Length of the run of elements, starting at context `i`'s cursor,
    /// that one CAS burst can cover: successive elements must stay in
    /// internal bank `ib`, row `row`, and occupy strictly consecutive
    /// columns from `col`. Always 1 unless the generation-aware policy
    /// is on and the part bursts more than one word; index-list
    /// (block-interleave) contexts issue per word.
    fn coalesce_run(&self, i: usize, ib: u32, row: u64, col: u64) -> u64 {
        let vc = &self.vcs[i];
        if !self.gen_aware() || vc.indices.is_some() {
            return 1;
        }
        let max =
            u64::from(self.config.sdram.burst_words.min(MAX_COALESCE as u32)).min(vc.remaining);
        let mut k = 1;
        let mut addr = vc.addr;
        while k < max {
            addr += vc.addr_step;
            if self.target_of_addr(addr) != (ib, row, col + k) {
                break;
            }
            k += 1;
        }
        k
    }

    /// One phase-B attempt on context `i`: start a turnaround, issue a
    /// (possibly burst-coalesced) CAS and advance the context, or
    /// decline. Returns whether the scheduling pass is done for this
    /// cycle (`false` = nothing happened, try the next candidate).
    fn try_issue_access(
        &mut self,
        i: usize,
        targets: &[(u32, u64, u64)],
        txns: &mut TransactionTable,
    ) -> bool {
        let (ib, row, col) = targets[i];
        if self.device.open_row(ib) != Some(row) {
            return false;
        }
        let kind = self.vcs[i].kind;
        // Bus turnaround on polarity reversal (§5.2.5).
        if let Some(p) = self.data_polarity {
            if p != kind && self.config.turnaround_cycles > 0 {
                self.turnaround_left = self.config.turnaround_cycles;
                self.stats.turnarounds += 1;
                self.data_polarity = Some(kind);
                return true;
            }
        }
        // Burst coalescing: adjacent same-row elements whose columns
        // are consecutive ride one CAS on BL4/BL8 parts. `k == 1`
        // everywhere else and takes the original single-word path.
        let k = self.coalesce_run(i, ib, row, col);
        let last_for_vc = self.vcs[i].remaining == k;
        // The element after the run feeds both the row-management
        // decision and the context advance below — computed once.
        let next = if last_for_vc {
            None
        } else {
            let vc = &self.vcs[i];
            let next_addr = match &vc.indices {
                Some(idx) => vc.base + vc.stride * idx[vc.pos + 1],
                None => vc.addr + vc.addr_step * k,
            };
            Some((next_addr, self.target_of_addr(next_addr)))
        };
        let next_same_row = next.map(|(_, t)| t.0 == ib && t.1 == row);
        let auto = self.decide_auto_precharge(i, ib, row, targets, next_same_row);
        let txn = self.vcs[i].txn;
        let element = self.vcs[i].element;
        let issued = if k > 1 {
            // One CAS burst covering the whole run; per-word tags
            // (reads) or data (writes) assembled on the stack.
            let vc = &self.vcs[i];
            let mut items = [(0u64, 0u64); MAX_COALESCE];
            for (j, slot) in items[..k as usize].iter_mut().enumerate() {
                let e = element + vc.index_delta * j as u64;
                slot.0 = col + j as u64;
                slot.1 = match kind {
                    OpKind::Read => tag_of(txn, e),
                    OpKind::Write => vc
                        .write_line
                        .as_ref()
                        .expect("write context carries its line")[e as usize],
                };
            }
            match kind {
                OpKind::Read => self
                    .device
                    .issue_read_burst(ib, auto, &items[..k as usize])
                    .is_ok(),
                OpKind::Write => self
                    .device
                    .issue_write_burst(ib, auto, &items[..k as usize])
                    .is_ok(),
            }
        } else {
            let cmd = match kind {
                OpKind::Read => SdramCmd::Read {
                    bank: ib,
                    col,
                    auto_precharge: auto,
                    tag: tag_of(txn, element),
                },
                OpKind::Write => {
                    let line = self.vcs[i]
                        .write_line
                        .as_ref()
                        .expect("write context carries its line");
                    SdramCmd::Write {
                        bank: ib,
                        col,
                        data: line[element as usize],
                        auto_precharge: auto,
                    }
                }
            };
            self.device.issue(cmd).is_ok()
        };
        if !issued {
            return false; // tRCD/tCCD still pending; try a younger VC.
        }
        let class = match (kind, auto) {
            (OpKind::Read, false) => CmdClass::Read,
            (OpKind::Read, true) => CmdClass::ReadAuto,
            (OpKind::Write, false) => CmdClass::Write,
            (OpKind::Write, true) => CmdClass::WriteAuto,
        };
        if !self.vcs[i].first_op_done {
            self.set_predictor(i, ib, row);
            self.vcs[i].first_op_done = true;
        }
        self.data_polarity = Some(kind);
        // Channel bookkeeping for the group-interleave preference.
        let group = self.config.sdram.bank_group_of(ib);
        if self.last_cas_group.is_some_and(|prev| prev != group) {
            self.stats.group_switches += 1;
        }
        self.last_cas_group = Some(group);
        if k > 1 {
            self.stats.coalesced_bursts += 1;
        }
        // Device rows from `map` are narrow; only remapped targets
        // carry the spare-region bit.
        if row & REMAP_ROW_BIT != 0 {
            self.stats.remapped_accesses += k;
        }
        match kind {
            OpKind::Read => {
                self.stats.elements_read += k;
                self.log_op(class, ib, row);
            }
            OpKind::Write => {
                self.stats.elements_written += k;
                txns.commit_writes(txn, k);
                self.log_op(class, ib, row);
            }
        }
        // Advance the context past the run: shift-and-add for word
        // interleave, next list entry for block interleave.
        let vc = &mut self.vcs[i];
        vc.remaining -= k;
        if vc.remaining == 0 {
            self.vcs.remove(i);
        } else {
            let (next_addr, target) = next.expect("non-last element has a next");
            vc.addr = next_addr;
            vc.target = target;
            if let Some(idx) = &vc.indices {
                vc.pos += 1;
                vc.element = idx[vc.pos];
            } else {
                vc.element += vc.index_delta * k;
            }
        }
        true
    }

    /// First VC whose target row is open *and* which the polarity rule
    /// permits to issue — used to decide whether phase A may run when
    /// promotion is disabled. A "ready" VC outside the polarity window
    /// cannot actually issue, so it must not suppress row management
    /// (doing so deadlocks).
    fn first_ready(&self, targets: &[(u32, u64, u64)], window: &[usize]) -> Option<usize> {
        window.iter().copied().find(|&i| {
            let (ib, row, _) = targets[i];
            self.device.open_row(ib) == Some(row)
        })
    }

    /// The ManageRow() decision of §5.2.2: should this access close its
    /// row via auto-precharge?
    fn decide_auto_precharge(
        &mut self,
        vc_idx: usize,
        ib: u32,
        row: u64,
        targets: &[(u32, u64, u64)],
        next_same_row: Option<bool>,
    ) -> bool {
        // bank_morehit_predict: another VC has a pending access to this
        // same open row.
        let more_hit =
            (0..self.vcs.len()).any(|j| j != vc_idx && targets[j].0 == ib && targets[j].1 == row);
        // bank_close_predict: another VC wants a *different* row in this
        // internal bank.
        let close_predict =
            (0..self.vcs.len()).any(|j| j != vc_idx && targets[j].0 == ib && targets[j].1 != row);
        if let Some(next_same_row) = next_same_row {
            // Vector request not complete: keep the row if our own next
            // element hits it (or someone else will).
            if next_same_row {
                self.stats.row_hits += 1;
            }
            return !(next_same_row || more_hit);
        }
        // Vector request complete.
        if more_hit {
            return false;
        }
        if close_predict || self.autoprecharge_predict[ib as usize] {
            return true;
        }
        false
    }

    /// Sets the one-bit autoprecharge predictor for internal bank `ib`
    /// when a context issues its first operation.
    fn set_predictor(&mut self, _vc_idx: usize, ib: u32, first_row: u64) {
        let matched = self.last_row[ib as usize] == Some(first_row);
        let h = &mut self.row_history[ib as usize];
        *h = ((*h << 1) | matched as u8) & 0xF;
        self.autoprecharge_predict[ib as usize] = match self.config.options.row_policy {
            RowPolicy::PaperLiteral => matched,
            RowPolicy::MissPredictsClose => !matched,
            RowPolicy::AlwaysClose => true,
            RowPolicy::AlwaysOpen => false,
            RowPolicy::AlphaHistory => self.config.options.precharge_policy_reg & (1 << *h) != 0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::OpKind;
    use crate::txn::{Transaction, TxnPhase};
    use pva_core::Vector;

    fn controller(bank: usize) -> BankController {
        let cfg = PvaConfig::default();
        let pla = Arc::new(K1Pla::new(&cfg.geometry));
        BankController::new(BankId::new(bank), cfg, pla)
    }

    fn open_read_txn(txns: &mut TransactionTable, id: TxnId, len: u64) {
        txns.open(
            id,
            Transaction {
                kind: OpKind::Read,
                length: len,
                request_index: 0,
                issued_at: 0,
                collected: vec![None; len as usize],
                collected_count: 0,
                committed_count: 0,
                write_line: None,
                faulted: Vec::new(),
                phase: TxnPhase::InBanks,
            },
        );
    }

    #[test]
    fn miss_is_not_queued() {
        let mut bc = controller(3);
        // Stride 16 from base 0 only ever hits bank 0.
        let cmd = VectorCommand {
            vector: Vector::new(0, 16, 32).unwrap(),
            kind: OpKind::Read,
            txn: TxnId(0),
        };
        assert_eq!(bc.observe_command(&cmd, None, 0), 0);
        assert!(bc.idle());
    }

    #[test]
    fn unit_stride_gathers_two_elements() {
        // 32-element unit-stride vector on 16 banks: two elements per bank.
        let mut bc = controller(5);
        let mut txns = TransactionTable::new(8);
        open_read_txn(&mut txns, TxnId(0), 32);
        let cmd = VectorCommand {
            vector: Vector::new(0, 1, 32).unwrap(),
            kind: OpKind::Read,
            txn: TxnId(0),
        };
        assert_eq!(bc.observe_command(&cmd, None, 0), 2);
        for now in 1..60 {
            bc.tick(now, &mut txns);
            if bc.idle() {
                break;
            }
        }
        let txn = txns.get(TxnId(0)).unwrap();
        // Elements 5 and 21 (addresses 5 and 21) belong to bank 5.
        assert_eq!(txn.collected_count, 2);
        assert!(txn.collected[5].is_some());
        assert!(txn.collected[21].is_some());
        assert_eq!(bc.stats().elements_read, 2);
    }

    #[test]
    fn gathered_data_matches_device_contents() {
        let mut bc = controller(0);
        let mut txns = TransactionTable::new(8);
        open_read_txn(&mut txns, TxnId(2), 8);
        // Stride 16: all 8 elements land in bank 0, local addrs 0..8*1.
        let cmd = VectorCommand {
            vector: Vector::new(0, 16, 8).unwrap(),
            kind: OpKind::Read,
            txn: TxnId(2),
        };
        assert_eq!(bc.observe_command(&cmd, None, 0), 8);
        for now in 1..200 {
            bc.tick(now, &mut txns);
            if bc.idle() {
                break;
            }
        }
        let txn = txns.get(TxnId(2)).unwrap();
        assert_eq!(txn.collected_count, 8);
        for (i, w) in txn.collected.iter().enumerate() {
            // Element i is at global addr 16i -> local addr i.
            assert_eq!(w.unwrap(), bc.device().peek(i as u64), "element {i}");
        }
    }

    #[test]
    fn writes_commit_and_persist() {
        let mut bc = controller(0);
        let mut txns = TransactionTable::new(8);
        let line: Arc<Vec<u64>> = Arc::new((0..4).map(|i| 0xAA00 + i).collect());
        txns.open(
            TxnId(1),
            Transaction {
                kind: OpKind::Write,
                length: 4,
                request_index: 0,
                issued_at: 0,
                collected: vec![],
                collected_count: 0,
                committed_count: 0,
                write_line: Some(line.clone()),
                faulted: Vec::new(),
                phase: TxnPhase::InBanks,
            },
        );
        let cmd = VectorCommand {
            vector: Vector::new(0, 16, 4).unwrap(),
            kind: OpKind::Write,
            txn: TxnId(1),
        };
        assert_eq!(bc.observe_command(&cmd, Some(line), 0), 4);
        for now in 1..200 {
            bc.tick(now, &mut txns);
            if bc.idle() && txns.get(TxnId(1)).unwrap().banks_done() {
                break;
            }
        }
        assert!(txns.get(TxnId(1)).unwrap().banks_done());
        for i in 0..4u64 {
            assert_eq!(bc.device().peek(i), 0xAA00 + i);
        }
    }

    #[test]
    fn power_of_two_bypass_is_faster_than_fifo_path() {
        // Same command, bypass on vs off: bypass must not be slower.
        let run = |bypass: bool| -> u64 {
            let mut cfg = PvaConfig::default();
            cfg.options.bypass_paths = bypass;
            let pla = Arc::new(K1Pla::new(&cfg.geometry));
            let mut bc = BankController::new(BankId::new(0), cfg, pla);
            let mut txns = TransactionTable::new(8);
            open_read_txn(&mut txns, TxnId(0), 2);
            let cmd = VectorCommand {
                vector: Vector::new(0, 16, 2).unwrap(),
                kind: OpKind::Read,
                txn: TxnId(0),
            };
            bc.observe_command(&cmd, None, 0);
            for now in 1..200 {
                bc.tick(now, &mut txns);
                if txns.get(TxnId(0)).unwrap().banks_done() {
                    return now;
                }
            }
            panic!("never completed");
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn non_power_of_two_pays_fhc_latency() {
        let run = |stride: u64| -> u64 {
            let mut bc = controller(0);
            let mut txns = TransactionTable::new(8);
            open_read_txn(&mut txns, TxnId(0), 1);
            let cmd = VectorCommand {
                vector: Vector::new(0, stride, 1).unwrap(),
                kind: OpKind::Read,
                txn: TxnId(0),
            };
            bc.observe_command(&cmd, None, 0);
            for now in 1..200 {
                bc.tick(now, &mut txns);
                if txns.get(TxnId(0)).unwrap().banks_done() {
                    return now;
                }
            }
            panic!("never completed");
        };
        // A single-element vector: stride class irrelevant to work, but
        // stride 48 (not a power of two) must pay the 2-cycle FHC.
        let pow2 = run(16);
        let npow2 = run(48);
        assert_eq!(npow2 - pow2, 2);
    }

    #[test]
    fn row_hit_within_vector_leaves_row_open() {
        // Stride 16, consecutive local addresses 0,1,2...: same row.
        let mut bc = controller(0);
        let mut txns = TransactionTable::new(8);
        open_read_txn(&mut txns, TxnId(0), 16);
        let cmd = VectorCommand {
            vector: Vector::new(0, 16, 16).unwrap(),
            kind: OpKind::Read,
            txn: TxnId(0),
        };
        bc.observe_command(&cmd, None, 0);
        for now in 1..400 {
            bc.tick(now, &mut txns);
            if bc.idle() {
                break;
            }
        }
        // One activate serves all 16 accesses.
        assert_eq!(bc.device().stats().activates, 1);
        assert_eq!(bc.device().stats().reads, 16);
    }

    #[test]
    fn turnaround_counted_on_polarity_reversal() {
        let mut bc = controller(0);
        let mut txns = TransactionTable::new(8);
        open_read_txn(&mut txns, TxnId(0), 1);
        let line = Arc::new(vec![7u64]);
        txns.open(
            TxnId(1),
            Transaction {
                kind: OpKind::Write,
                length: 1,
                request_index: 1,
                issued_at: 0,
                collected: vec![],
                collected_count: 0,
                committed_count: 0,
                write_line: Some(line.clone()),
                faulted: Vec::new(),
                phase: TxnPhase::InBanks,
            },
        );
        let read = VectorCommand {
            vector: Vector::new(0, 16, 1).unwrap(),
            kind: OpKind::Read,
            txn: TxnId(0),
        };
        let write = VectorCommand {
            vector: Vector::new(256, 16, 1).unwrap(),
            kind: OpKind::Write,
            txn: TxnId(1),
        };
        bc.observe_command(&read, None, 0);
        bc.observe_command(&write, Some(line), 0);
        for now in 1..400 {
            bc.tick(now, &mut txns);
            if bc.idle() && txns.get(TxnId(1)).unwrap().banks_done() {
                break;
            }
        }
        assert_eq!(bc.stats().turnarounds, 1);
    }
}
