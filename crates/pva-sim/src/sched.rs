//! Event queue for the next-event fast path.
//!
//! The reference model ticks every bank controller every cycle. The
//! fast path instead keeps one pending wake-up per controller in a
//! hand-rolled binary min-heap keyed by `(cycle, controller)`, pops the
//! earliest, and bulk-advances the clock across the gap — cycles where
//! provably nothing can change are never executed. Controllers that
//! finish a tick without doing work publish a wake hint (the earliest
//! cycle their next tick could act); controllers fully at rest park
//! until a broadcast re-arms them.
//!
//! The heap uses *lazy invalidation*: [`EventQueue::wake`] never
//! removes a superseded (later) entry, it just records the new earlier
//! cycle in the authoritative `next_run` table and pushes a fresh
//! entry. Stale heap entries — those disagreeing with `next_run` — are
//! discarded when they surface at the top. This keeps every operation
//! O(log n) with no sift-to-arbitrary-position machinery.

/// Number of jump-size histogram buckets in [`EventStats::jump_hist`].
pub const JUMP_BUCKETS: usize = 8;

/// Sentinel in the `next_run` table: no wake-up scheduled.
const PARKED: u64 = u64::MAX;

/// Counters describing how the event-driven loop spent a run: how many
/// cycles were actually executed versus jumped over, and the shape of
/// the jumps. Purely observational — never feeds back into timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Cycles the event loop executed in full (bus arbitration, due
    /// controller ticks, transaction bookkeeping).
    pub executed_cycles: u64,
    /// Cycles jumped over in bulk as provable no-ops.
    pub skipped_cycles: u64,
    /// Number of bulk jumps taken (time advances of ≥ 1 cycle).
    pub jumps: u64,
    /// Controller wake-ups popped from the queue.
    pub events_popped: u64,
    /// Histogram of jump sizes: bucket `i` counts jumps of
    /// `2^i ..= 2^(i+1) - 1` cycles; the last bucket is open-ended
    /// (`128+` with the default [`JUMP_BUCKETS`]).
    pub jump_hist: [u64; JUMP_BUCKETS],
}

impl EventStats {
    /// Records one bulk jump of `gap` cycles.
    pub(crate) fn record_jump(&mut self, gap: u64) {
        debug_assert!(gap > 0, "a jump always advances time");
        self.jumps += 1;
        let bucket = (u64::BITS - 1 - gap.leading_zeros()) as usize;
        self.jump_hist[bucket.min(JUMP_BUCKETS - 1)] += 1;
    }

    /// Accumulates another run's counters into this one (for summing
    /// across traces in a sweep).
    pub fn absorb(&mut self, other: &EventStats) {
        self.executed_cycles += other.executed_cycles;
        self.skipped_cycles += other.skipped_cycles;
        self.jumps += other.jumps;
        self.events_popped += other.events_popped;
        for (acc, v) in self.jump_hist.iter_mut().zip(other.jump_hist) {
            *acc += v;
        }
    }
}

/// One pending wake-up per bank controller, ordered by cycle.
///
/// Ties on the cycle break toward the lower controller index, so due
/// controllers pop in the same ascending-index order the reference
/// model ticks them in.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    /// Min-heap of `(cycle, controller)` wake-ups, including stale
    /// entries superseded by an earlier `wake`.
    heap: Vec<(u64, u32)>,
    /// Authoritative next-run cycle per controller ([`PARKED`] when
    /// none); a heap entry is live iff it matches this table.
    next_run: Vec<u64>,
    /// Hot lane for the overwhelmingly common wake target — the cycle
    /// right after the last drain. During a busy stretch every working
    /// controller re-wakes at `t + 1`, and routing those through the
    /// heap costs a sift-up now and a sift-down at the very next
    /// drain, both for nothing. Entries here are always live: after
    /// `drain_due(c)` every `wake` carries a cycle `>= c + 1 ==
    /// soon_cycle`, so nothing can supersede a lane entry.
    soon: Vec<u32>,
    /// The cycle `soon` entries are due at (the cycle after the last
    /// drain; [`PARKED`] before any drain, closing the lane).
    soon_cycle: u64,
}

impl EventQueue {
    /// Clears all state and sizes the queue for `n` controllers, all
    /// parked.
    pub(crate) fn reset(&mut self, n: usize) {
        self.heap.clear();
        self.next_run.clear();
        self.next_run.resize(n, PARKED);
        self.soon.clear();
        self.soon_cycle = PARKED;
    }

    /// Schedules controller `idx` to run at `cycle`. An earlier
    /// existing schedule wins — waking early is sound (the tick replays
    /// a no-op and republishes its hint), waking late is not.
    pub(crate) fn wake(&mut self, idx: usize, cycle: u64) {
        debug_assert!(cycle < PARKED, "PARKED is reserved");
        if cycle < self.next_run[idx] {
            self.next_run[idx] = cycle;
            if cycle == self.soon_cycle {
                self.soon.push(idx as u32);
            } else {
                self.push(cycle, idx as u32);
            }
        }
    }

    /// [`wake`](EventQueue::wake), but a silent no-op when the queue is
    /// disarmed (sized for zero controllers) — for callers shared with
    /// the reference path, like the broadcast logic.
    pub(crate) fn wake_if_armed(&mut self, idx: usize, cycle: u64) {
        if idx < self.next_run.len() {
            self.wake(idx, cycle);
        }
    }

    /// Whether controllers are already scheduled for the cycle right
    /// after the last drain — the busy-stretch signature. The event
    /// loop uses this to bypass the full next-event/jump computation:
    /// the earliest event *is* the next cycle, so the only possible
    /// "jump" is zero-length.
    pub(crate) fn has_due_next(&self) -> bool {
        !self.soon.is_empty()
    }

    /// Earliest scheduled wake-up cycle across all controllers, or
    /// `None` when every controller is parked. Discards stale entries
    /// as they surface.
    pub(crate) fn next_event(&mut self) -> Option<u64> {
        let lane = if self.soon.is_empty() {
            None
        } else {
            Some(self.soon_cycle)
        };
        while let Some(&(cycle, idx)) = self.heap.first() {
            if self.next_run[idx as usize] == cycle {
                return Some(lane.map_or(cycle, |l| l.min(cycle)));
            }
            self.pop_top(); // stale: superseded by an earlier wake
        }
        lane
    }

    /// Pops the next controller due at or before `cycle` and parks it
    /// (its tick will reschedule it). `None` when nothing is due.
    /// Test-only convenience; the simulator drains whole cycles with
    /// [`drain_due`](EventQueue::drain_due).
    #[cfg(test)]
    pub(crate) fn pop_due(&mut self, cycle: u64) -> Option<usize> {
        // The one-at-a-time form is off the hot path: fold the lane
        // back into the heap rather than duplicating the merge logic.
        while let Some(idx) = self.soon.pop() {
            self.push(self.soon_cycle, idx);
        }
        while let Some(&(at, idx)) = self.heap.first() {
            if at > cycle {
                return None;
            }
            self.pop_top();
            if self.next_run[idx as usize] == at {
                self.next_run[idx as usize] = PARKED;
                return Some(idx as usize);
            }
        }
        None
    }

    /// Pops *every* controller due at or before `cycle` into `out` (in
    /// cycle-then-index order) and parks them — the batched form of
    /// [`pop_due`](EventQueue::pop_due) for the per-cycle hot loop.
    pub(crate) fn drain_due(&mut self, cycle: u64, out: &mut Vec<u32>) {
        out.clear();
        if self.soon_cycle == cycle {
            // Lane entries are always live (nothing can supersede
            // them; see the field docs), so they transfer unchecked.
            out.append(&mut self.soon);
            for &idx in out.iter() {
                debug_assert_eq!(self.next_run[idx as usize], cycle);
                self.next_run[idx as usize] = PARKED;
            }
        }
        while let Some(&(at, idx)) = self.heap.first() {
            if at > cycle {
                break;
            }
            self.pop_top();
            if self.next_run[idx as usize] == at {
                self.next_run[idx as usize] = PARKED;
                out.push(idx);
            }
        }
        // The reference model ticks due controllers in ascending index
        // order; the heap guarantees that per source, but merging the
        // lane with same-cycle heap entries (e.g. a broadcast re-arming
        // a parked controller at this very cycle) can interleave them.
        if !out.is_sorted() {
            out.sort_unstable();
        }
        // Open the lane for re-wakes targeting the next cycle.
        self.soon_cycle = cycle + 1;
    }

    /// Pushes one entry and restores the heap order (sift up).
    fn push(&mut self, cycle: u64, idx: u32) {
        self.heap.push((cycle, idx));
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent] <= self.heap[i] {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    /// Removes the minimum entry and restores the heap order (sift
    /// down).
    fn pop_top(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.truncate(last);
        let mut i = 0;
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len() && self.heap[right] < self.heap[left] {
                right
            } else {
                left
            };
            if self.heap[i] <= self.heap[child] {
                break;
            }
            self.heap.swap(i, child);
            i = child;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_index_order() {
        let mut q = EventQueue::default();
        q.reset(4);
        q.wake(2, 10);
        q.wake(0, 5);
        q.wake(3, 10);
        q.wake(1, 7);
        assert_eq!(q.next_event(), Some(5));
        assert_eq!(q.pop_due(10), Some(0));
        assert_eq!(q.pop_due(10), Some(1));
        // Same-cycle entries pop in ascending controller order.
        assert_eq!(q.pop_due(10), Some(2));
        assert_eq!(q.pop_due(10), Some(3));
        assert_eq!(q.pop_due(u64::MAX - 1), None);
        assert_eq!(q.next_event(), None);
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut q = EventQueue::default();
        q.reset(2);
        q.wake(0, 3);
        q.wake(1, 8);
        assert_eq!(q.pop_due(2), None);
        assert_eq!(q.pop_due(3), Some(0));
        assert_eq!(q.pop_due(3), None);
        assert_eq!(q.next_event(), Some(8));
    }

    #[test]
    fn earlier_wake_supersedes_later_entry() {
        let mut q = EventQueue::default();
        q.reset(2);
        q.wake(0, 100);
        q.wake(0, 4); // pulls the schedule in
        q.wake(0, 50); // later than the live entry: ignored
        assert_eq!(q.next_event(), Some(4));
        assert_eq!(q.pop_due(4), Some(0));
        // The stale cycle-100 entry must not resurface.
        assert_eq!(q.pop_due(u64::MAX - 1), None);
        assert_eq!(q.next_event(), None);
    }

    #[test]
    fn reset_clears_all_schedules() {
        let mut q = EventQueue::default();
        q.reset(3);
        q.wake(0, 1);
        q.wake(1, 2);
        q.reset(3);
        assert_eq!(q.next_event(), None);
        q.wake(2, 9);
        assert_eq!(q.pop_due(9), Some(2));
    }

    #[test]
    fn interleaved_wakes_and_pops_stay_ordered() {
        let mut q = EventQueue::default();
        q.reset(8);
        // Deterministic pseudo-shuffled schedule.
        for k in 0..64u64 {
            let idx = ((k * 5) % 8) as usize;
            q.wake(idx, (k * 37) % 101 + 1);
        }
        let mut last = 0;
        let mut popped = 0;
        while let Some(c) = q.next_event() {
            assert!(c >= last, "heap order violated: {c} after {last}");
            last = c;
            assert!(q.pop_due(c).is_some());
            popped += 1;
        }
        // One live schedule per controller survives the supersessions.
        assert_eq!(popped, 8);
    }

    #[test]
    fn jump_histogram_buckets_by_power_of_two() {
        let mut s = EventStats::default();
        for gap in [1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 127, 128, 1 << 20] {
            s.record_jump(gap);
        }
        assert_eq!(s.jump_hist, [1, 2, 2, 2, 2, 2, 2, 2]);
        assert_eq!(s.jumps, 15);
    }

    #[test]
    fn absorb_sums_every_counter() {
        let mut a = EventStats {
            executed_cycles: 10,
            skipped_cycles: 90,
            ..EventStats::default()
        };
        a.record_jump(3);
        let mut b = EventStats {
            executed_cycles: 1,
            skipped_cycles: 9,
            events_popped: 5,
            ..EventStats::default()
        };
        b.record_jump(200);
        a.absorb(&b);
        assert_eq!(a.executed_cycles, 11);
        assert_eq!(a.skipped_cycles, 99);
        assert_eq!(a.jumps, 2);
        assert_eq!(a.events_popped, 5);
        assert_eq!(a.jump_hist[1], 1);
        assert_eq!(a.jump_hist[JUMP_BUCKETS - 1], 1);
    }
}
