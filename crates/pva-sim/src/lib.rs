//! # pva-sim — cycle-level Parallel Vector Access unit
//!
//! A simulation of the PVA hardware prototype of §5 of Mathew, McKee,
//! Carter and Davis (HPCA 2000): sixteen bank controllers behind a
//! shared split-transaction vector bus, each with first-hit
//! predict/calculate logic, an eight-entry request register file, a
//! four-context access scheduler with wired-OR row predict lines, and a
//! restimer-checked SDRAM device.
//!
//! The unit accepts [`HostRequest`]s (gathered vector reads and
//! scattered vector writes of up to one cache line), runs them with the
//! front end issuing as fast as bus resources allow, and reports cycle
//! counts plus the gathered data — the measurement setup of the paper's
//! evaluation (§6.2).
//!
//! ```
//! use pva_core::Vector;
//! use pva_sim::{HostRequest, PvaConfig, PvaUnit};
//!
//! let mut unit = PvaUnit::new(PvaConfig::default())?;
//! // A stride-19 gather: all 16 banks work in parallel.
//! let v = Vector::new(0, 19, 32)?;
//! let r = unit.run(vec![HostRequest::Read { vector: v }])?;
//! // The gathered line equals a functional read of each element.
//! for (i, &w) in r.read_data(0).iter().enumerate() {
//!     assert_eq!(w, unit.peek(v.element(i as u64)));
//! }
//! # Ok::<(), pva_core::PvaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank_controller;
mod command;
mod complexity;
mod config;
mod cpu;
mod indirect;
mod sched;
mod trace_log;
mod txn;
mod unit;
mod vcd;

pub use bank_controller::{BankController, BcStats};
pub use command::{Completion, HostRequest, OpKind, TxnId, VectorCommand};
pub use complexity::{unit_complexity, ComplexityReport, ModuleComplexity};
pub use config::{
    default_precharge_policy, PvaConfig, PvaConfigError, RowPolicy, SchedulerOptions,
};
pub use cpu::{mixed_workload, CpuConfig, CpuModel, CpuRunResult};
pub use indirect::{run_indirect_gather, run_indirect_scatter, IndirectTiming};
pub use sched::{EventStats, JUMP_BUCKETS};
pub use trace_log::TraceEvent;
pub use txn::{Transaction, TransactionTable, TxnPhase};
pub use unit::{PvaUnit, RunResult, UnitStats};
pub use vcd::write_vcd;
