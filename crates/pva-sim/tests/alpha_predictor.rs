//! The Alpha 21174-style four-bit row predictor (§2.4.1) as a PVA row
//! policy: history-indexed precharge decisions, software-programmable
//! via the 16-bit policy register.

use pva_core::Vector;
use pva_sim::{default_precharge_policy, HostRequest, PvaConfig, PvaUnit, RowPolicy};

fn alpha_config(policy_reg: u16) -> PvaConfig {
    let mut cfg = PvaConfig::default();
    cfg.options.row_policy = RowPolicy::AlphaHistory;
    cfg.options.precharge_policy_reg = policy_reg;
    cfg
}

#[test]
fn default_policy_register_is_majority_miss() {
    let reg = default_precharge_policy();
    // History 0b1111 (four hits): leave open.
    assert_eq!(reg & (1 << 0b1111), 0);
    // History 0b0000 (four misses): close.
    assert_ne!(reg & (1 << 0b0000), 0);
    // Exactly two hits: close (<= 2 rule).
    assert_ne!(reg & (1 << 0b0101), 0);
    // Three hits: leave open.
    assert_eq!(reg & (1 << 0b0111), 0);
}

#[test]
fn alpha_policy_produces_correct_data() {
    for reg in [0u16, 0xFFFF, default_precharge_policy()] {
        let mut unit = PvaUnit::new(alpha_config(reg)).unwrap();
        let v = Vector::new(0x40, 7, 32).unwrap();
        for (i, addr) in v.addresses().enumerate() {
            unit.preload(addr, 6000 + i as u64);
        }
        let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
        let want: Vec<u64> = (0..32).map(|i| 6000 + i).collect();
        assert_eq!(r.read_data(0), &want[..], "policy reg {reg:#06x}");
    }
}

#[test]
fn all_open_policy_helps_repeat_row_traffic() {
    // Requests repeatedly hitting the same rows: a never-close register
    // (0x0000) should be at least as fast as an always-close one
    // (0xFFFF) — the adaptive point of the 21174 design.
    let run = |reg: u16| {
        let mut unit = PvaUnit::new(alpha_config(reg)).unwrap();
        // Single-bank stride, same row every request.
        let reqs: Vec<HostRequest> = (0..8)
            .map(|_| HostRequest::Read {
                vector: Vector::new(0, 16, 32).unwrap(),
            })
            .collect();
        unit.run(reqs).unwrap().cycles
    };
    assert!(run(0x0000) <= run(0xFFFF));
}

#[test]
fn history_adapts_over_a_run() {
    // A workload whose behaviour changes: first repeat-row, then
    // alternating rows. The history policy must remain correct either
    // way (performance adaptivity is measured in the ablation bench).
    let mut unit = PvaUnit::new(alpha_config(default_precharge_policy())).unwrap();
    let mut reqs = Vec::new();
    for _ in 0..4 {
        reqs.push(HostRequest::Read {
            vector: Vector::new(0, 16, 32).unwrap(),
        });
    }
    for i in 0..4u64 {
        reqs.push(HostRequest::Read {
            vector: Vector::new((i % 2) * 32768 * 16, 16, 32).unwrap(),
        });
    }
    let r = unit.run(reqs).unwrap();
    assert_eq!(r.completions.len(), 8);
    for c in &r.completions {
        assert_eq!(c.data.as_ref().unwrap().len(), 32);
    }
}
