//! The PVA unit on a block/cache-line interleaved memory system —
//! the §4.1.3/§4.3.1 configuration with N first-hit units per bank
//! controller.

use pva_core::{Geometry, Vector};
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

/// 4 banks, 8-word blocks (a small cache-line-interleaved system).
fn block_config() -> PvaConfig {
    PvaConfig {
        geometry: Geometry::cacheline_interleaved(4, 8).unwrap(),
        ..PvaConfig::default()
    }
}

#[test]
fn gather_correct_on_block_interleave() {
    for stride in [1u64, 2, 3, 5, 8, 9, 12, 19, 31, 32, 33] {
        for base in [0u64, 5, 13] {
            let mut unit = PvaUnit::new(block_config()).unwrap();
            let v = Vector::new(base, stride, 32).unwrap();
            for (i, addr) in v.addresses().enumerate() {
                unit.preload(addr, 0xB10C_0000 + i as u64);
            }
            let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
            for (i, &w) in r.read_data(0).iter().enumerate() {
                assert_eq!(
                    w,
                    0xB10C_0000 + i as u64,
                    "stride={stride} base={base} element {i}"
                );
            }
        }
    }
}

#[test]
fn scatter_round_trips_on_block_interleave() {
    let mut unit = PvaUnit::new(block_config()).unwrap();
    let v = Vector::new(7, 9, 32).unwrap(); // the paper's case-2.2 shape
    let data: Vec<u64> = (0..32).map(|i| 0xD00D + i).collect();
    unit.run(vec![HostRequest::Write {
        vector: v,
        data: data.clone(),
    }])
    .unwrap();
    for (i, addr) in v.addresses().enumerate() {
        assert_eq!(unit.peek(addr), data[i], "element {i}");
    }
}

#[test]
fn unit_stride_on_block_interleave_hits_few_banks() {
    // A 32-word unit-stride line on (4 banks x 8-word blocks) spans
    // exactly 4 blocks: one per bank, 8 elements each.
    let mut unit = PvaUnit::new(block_config()).unwrap();
    let v = Vector::unit_stride(0, 32).unwrap();
    let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    for bc in &r.bc_stats {
        assert_eq!(bc.elements_read, 8);
    }
}

#[test]
fn interleave_choice_shifts_which_strides_parallelize() {
    // §3.3 (Hsu & Smith): cache-line interleaving performs well for many
    // vector patterns. At stride = N (the block size), block interleave
    // rotates banks perfectly while word interleave collapses to a
    // single bank (8 mod 4 = 0); at stride = N*M both collapse.
    let run = |geometry: Geometry, stride: u64| {
        let cfg = PvaConfig {
            geometry,
            ..PvaConfig::default()
        };
        let mut unit = PvaUnit::new(cfg).unwrap();
        let reqs: Vec<HostRequest> = (0..4u64)
            .map(|i| HostRequest::Read {
                vector: Vector::new(i * 4096, stride, 32).unwrap(),
            })
            .collect();
        unit.run(reqs).unwrap().cycles
    };
    let word_g = Geometry::word_interleaved(4).unwrap();
    let block_g = Geometry::cacheline_interleaved(4, 8).unwrap();
    // Stride 8 = N: block interleave spreads, word interleave serializes.
    assert!(
        run(block_g, 8) < run(word_g, 8),
        "block interleave should win at stride = block size"
    );
    // Stride 32 = N*M: both collapse to one bank, within ~15%.
    let (w, b) = (run(word_g, 32), run(block_g, 32));
    let (lo, hi) = (w.min(b) as f64, w.max(b) as f64);
    assert!(hi <= lo * 1.15, "both collapse at stride N*M: {w} vs {b}");
    // Odd strides parallelize fully on both.
    assert!(run(word_g, 3) < run(word_g, 32));
    assert!(run(block_g, 3) < run(block_g, 32));
}

#[test]
fn paper_case_2_2_example_gathers_correctly() {
    // §4.1.2 example 4: M=8, N=4, B=0, S=9, L=10 — banks
    // 0,2,4,6,1,3,5,7,2,4. The logical-bank machinery must serve it.
    let cfg = PvaConfig {
        geometry: Geometry::cacheline_interleaved(8, 4).unwrap(),
        ..PvaConfig::default()
    };
    let mut unit = PvaUnit::new(cfg).unwrap();
    let v = Vector::new(0, 9, 10).unwrap();
    for (i, addr) in v.addresses().enumerate() {
        unit.preload(addr, 777 + i as u64);
    }
    let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    let want: Vec<u64> = (0..10).map(|i| 777 + i).collect();
    assert_eq!(r.read_data(0), &want[..]);
    // The paper's bank sequence 0,2,4,6,1,3,5,7,2,4 gives two elements
    // each to banks 2 and 4, one to every other bank.
    let counts: Vec<u64> = r.bc_stats.iter().map(|b| b.elements_read).collect();
    assert_eq!(counts, vec![1, 1, 2, 1, 2, 1, 1, 1]);
}

#[test]
fn wide_banks_are_rejected() {
    let cfg = PvaConfig {
        geometry: Geometry::new(4, 2, 2).unwrap(),
        ..PvaConfig::default()
    };
    assert!(PvaUnit::new(cfg).is_err());
}
