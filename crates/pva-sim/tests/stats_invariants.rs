//! Bookkeeping invariants of the unit's statistics and the incremental
//! API.

use pva_core::Vector;
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

#[test]
fn bus_cycle_accounting_adds_up() {
    // Every simulated cycle is exactly one of: request broadcast, data
    // transfer, or idle.
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let reqs: Vec<HostRequest> = (0..6u64)
        .map(|i| {
            if i % 2 == 0 {
                HostRequest::Read {
                    vector: Vector::new(i * 999, 7, 32).unwrap(),
                }
            } else {
                HostRequest::Write {
                    vector: Vector::new(i * 999, 7, 32).unwrap(),
                    data: vec![i; 32],
                }
            }
        })
        .collect();
    let r = unit.run(reqs).unwrap();
    assert_eq!(
        r.stats.request_cycles + r.stats.data_cycles + r.stats.idle_cycles,
        r.stats.cycles,
        "request {} + data {} + idle {} != total {}",
        r.stats.request_cycles,
        r.stats.data_cycles,
        r.stats.idle_cycles,
        r.stats.cycles
    );
    assert_eq!(r.stats.commands, 6);
    // Reads: 16 stage cycles each; writes: 16 stage cycles each.
    assert_eq!(r.stats.data_cycles, 6 * 16);
}

#[test]
fn incremental_api_matches_batch() {
    let reqs: Vec<HostRequest> = (0..8u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 640, 19, 32).unwrap(),
        })
        .collect();
    let batch = {
        let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
        unit.run(reqs.clone()).unwrap().cycles
    };
    let incremental = {
        let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
        for r in reqs {
            unit.submit(r).unwrap();
        }
        let start = unit.now();
        while !unit.idle() {
            unit.step().unwrap();
        }
        let completions = unit.take_completions();
        assert_eq!(completions.len(), 8);
        unit.now() - start
    };
    assert_eq!(batch, incremental);
}

#[test]
fn outstanding_counts_drain_to_zero() {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    for i in 0..4u64 {
        unit.submit(HostRequest::Read {
            vector: Vector::new(i * 128, 3, 32).unwrap(),
        })
        .unwrap();
    }
    assert_eq!(unit.outstanding(), 4);
    while !unit.idle() {
        unit.step().unwrap();
    }
    assert_eq!(unit.outstanding(), 0);
    assert_eq!(unit.take_completions().len(), 4);
}

#[test]
fn per_bank_element_counts_cover_each_vector() {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let r = unit
        .run(vec![
            HostRequest::Read {
                vector: Vector::new(0, 19, 32).unwrap(),
            },
            HostRequest::Read {
                vector: Vector::new(7, 1, 32).unwrap(),
            },
        ])
        .unwrap();
    let read: u64 = r.bc_stats.iter().map(|b| b.elements_read).sum();
    assert_eq!(read, 64, "every element read exactly once");
}
