//! Randomized fuzzing of the whole PVA unit: random batches of mixed
//! gathered reads and scattered writes, checked element-for-element
//! against a simple functional memory model, across geometries,
//! scheduler options and refresh settings. Uses the deterministic
//! in-tree [`SplitMix64`] so every failure replays exactly.

use std::collections::HashMap;

use pva_core::{Geometry, SplitMix64, Vector};
use pva_sim::{HostRequest, PvaConfig, PvaUnit, RowPolicy};
use sdram::{DevicePreset, SdramConfig};

const CASES: u64 = 48;

/// A request recipe the generator produces.
#[derive(Debug, Clone)]
struct Req {
    base: u64,
    stride: u64,
    len: u64,
    write: bool,
    seed: u64,
}

fn req(r: &mut SplitMix64) -> Req {
    Req {
        base: r.below(8192),
        stride: r.range(1, 64),
        len: r.range(1, 33),
        write: r.coin(),
        seed: r.next_u64(),
    }
}

fn reqs(r: &mut SplitMix64, lo: u64, hi: u64) -> Vec<Req> {
    let n = r.range(lo, hi);
    (0..n).map(|_| req(r)).collect()
}

/// Functional oracle: apply the same request sequence to a flat map,
/// reading PVA background values through `unit.peek` on first touch.
///
/// Per §5.2.4 the hardware permits WAW reordering between two writes to
/// the same location that are not separated by a read, so addresses
/// touched by more than one write request are excluded from the checks
/// (the paper relies on a write-allocate L2 making that case
/// impossible in practice).
fn run_both(reqs: &[Req], cfg: PvaConfig) {
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    let mut write_count: HashMap<u64, u32> = HashMap::new();
    let mut host: Vec<HostRequest> = Vec::new();
    let mut expected_reads: Vec<(usize, Vec<(u64, u64)>)> = Vec::new();

    for (i, r) in reqs.iter().enumerate() {
        let v = Vector::new(r.base, r.stride, r.len).expect("nonzero");
        if r.write {
            let data: Vec<u64> = (0..r.len).map(|k| r.seed ^ (k << 32) ^ k).collect();
            for (k, addr) in v.addresses().enumerate() {
                oracle.insert(addr, data[k]);
                *write_count.entry(addr).or_default() += 1;
            }
            host.push(HostRequest::Write { vector: v, data });
        } else {
            let want: Vec<(u64, u64)> = v
                .addresses()
                .map(|a| (a, oracle.get(&a).copied().unwrap_or_else(|| unit.peek(a))))
                .collect();
            expected_reads.push((i, want));
            host.push(HostRequest::Read { vector: v });
        }
    }

    let result = unit.run(host).expect("requests fit the line length");
    assert_eq!(result.completions.len(), reqs.len());
    for (idx, want) in expected_reads {
        let got = result.completions[idx]
            .data
            .as_ref()
            .expect("read completion carries data");
        for (k, (addr, val)) in want.iter().enumerate() {
            if write_count.get(addr).copied().unwrap_or(0) > 1 {
                continue; // WAW-ambiguous address (allowed by §5.2.4)
            }
            assert_eq!(got[k], *val, "request {idx} element {k}");
        }
    }
    // Unambiguous oracle writes landed in memory.
    for (&addr, &val) in &oracle {
        if write_count[&addr] > 1 {
            continue;
        }
        assert_eq!(unit.peek(addr), val, "address {addr:#x}");
    }
}

/// The default prototype configuration serves any mixed batch
/// correctly. Note: reads and writes in one batch respect program
/// order per §5.2.4 (RAW hazards cannot happen).
#[test]
fn default_config_serves_random_batches() {
    let mut r = SplitMix64::new(0xF201);
    for _ in 0..CASES {
        let reqs = reqs(&mut r, 1, 12);
        run_both(&reqs, PvaConfig::default());
    }
}

/// Every scheduler-option corner serves the same batches correctly.
#[test]
fn option_corners_are_correct() {
    let mut r = SplitMix64::new(0xF202);
    for _ in 0..CASES {
        let reqs = reqs(&mut r, 1, 8);
        let mut cfg = PvaConfig::default();
        cfg.options.out_of_order = r.coin();
        cfg.options.promote_opens = r.coin();
        cfg.options.bypass_paths = r.coin();
        cfg.options.row_policy = match r.below(4) {
            0 => RowPolicy::MissPredictsClose,
            1 => RowPolicy::PaperLiteral,
            2 => RowPolicy::AlwaysClose,
            _ => RowPolicy::AlwaysOpen,
        };
        run_both(&reqs, cfg);
    }
}

/// Block-interleaved geometries serve the same batches correctly.
#[test]
fn block_interleave_is_correct() {
    let mut r = SplitMix64::new(0xF203);
    for _ in 0..CASES {
        let reqs = reqs(&mut r, 1, 8);
        let m = r.range(1, 5) as u32;
        let n = r.range(1, 6) as u32;
        let cfg = PvaConfig {
            geometry: Geometry::cacheline_interleaved(1 << m, 1 << n).unwrap(),
            ..PvaConfig::default()
        };
        run_both(&reqs, cfg);
    }
}

/// Refresh-enabled devices serve the same batches correctly.
#[test]
fn refresh_config_is_correct() {
    let mut r = SplitMix64::new(0xF204);
    for _ in 0..CASES {
        let reqs = reqs(&mut r, 1, 8);
        let cfg = PvaConfig {
            sdram: SdramConfig::for_device(DevicePreset::SdrRefresh),
            ..PvaConfig::default()
        };
        run_both(&reqs, cfg);
    }
}

/// The kitchen sink: block interleave + multi-rank devices + refresh +
/// CVMS-grade FHC latency, all at once.
#[test]
fn combined_exotic_config_is_correct() {
    let mut r = SplitMix64::new(0xF205);
    for _ in 0..CASES {
        let reqs = reqs(&mut r, 1, 6);
        let cfg = PvaConfig {
            geometry: Geometry::cacheline_interleaved(4, 8).unwrap(),
            sdram: SdramConfig {
                ranks: 2,
                log2_rows: 4,
                log2_cols: 6,
                ..SdramConfig::for_device(DevicePreset::SdrRefresh)
            },
            fhc_latency: 13,
            ..PvaConfig::default()
        };
        run_both(&reqs, cfg);
    }
}

/// The simulation is deterministic: identical batches, identical
/// cycle counts and data.
#[test]
fn simulation_is_deterministic() {
    let mut r = SplitMix64::new(0xF206);
    for _ in 0..CASES {
        let reqs = reqs(&mut r, 1, 8);
        let build = |reqs: &[Req]| -> (u64, Vec<Option<Vec<u64>>>) {
            let mut unit = PvaUnit::new(PvaConfig::default()).expect("valid");
            let host: Vec<HostRequest> = reqs
                .iter()
                .map(|r| {
                    let v = Vector::new(r.base, r.stride, r.len).expect("nonzero");
                    if r.write {
                        HostRequest::Write {
                            vector: v,
                            data: vec![r.seed; r.len as usize],
                        }
                    } else {
                        HostRequest::Read { vector: v }
                    }
                })
                .collect();
            let r = unit.run(host).expect("runs");
            (
                r.cycles,
                r.completions.into_iter().map(|c| c.data).collect(),
            )
        };
        assert_eq!(build(&reqs), build(&reqs));
    }
}

/// Completion order bookkeeping: every request completes exactly once,
/// indices match submission order, reads carry data and writes do not.
#[test]
fn completions_are_well_formed() {
    let mut r = SplitMix64::new(0xF207);
    for _ in 0..CASES {
        let reqs = reqs(&mut r, 1, 10);
        let mut unit = PvaUnit::new(PvaConfig::default()).expect("valid");
        let host: Vec<HostRequest> = reqs
            .iter()
            .map(|r| {
                let v = Vector::new(r.base, r.stride, r.len).expect("nonzero");
                if r.write {
                    HostRequest::Write {
                        vector: v,
                        data: vec![0; r.len as usize],
                    }
                } else {
                    HostRequest::Read { vector: v }
                }
            })
            .collect();
        let result = unit.run(host).expect("runs");
        assert_eq!(result.completions.len(), reqs.len());
        for (i, c) in result.completions.iter().enumerate() {
            assert_eq!(c.request_index, i);
            assert!(c.completed_at >= c.issued_at);
            match reqs[i].write {
                true => assert!(c.data.is_none()),
                false => {
                    assert_eq!(
                        c.data.as_ref().expect("read data").len() as u64,
                        reqs[i].len
                    );
                }
            }
        }
    }
}

/// §5.2.4 consistency semantics, deterministically: a read between two
/// writes to the same location orders them (no WAW ambiguity), and RAW
/// hazards cannot happen.
#[test]
fn polarity_rule_orders_write_read_write() {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let v = Vector::new(0x700, 3, 32).unwrap();
    let first: Vec<u64> = vec![1; 32];
    let second: Vec<u64> = vec![2; 32];
    let r = unit
        .run(vec![
            HostRequest::Write {
                vector: v,
                data: first,
            },
            HostRequest::Read { vector: v },
            HostRequest::Write {
                vector: v,
                data: second.clone(),
            },
        ])
        .unwrap();
    // The read (RAW) sees the first write's data...
    assert_eq!(r.completions[1].data.as_ref().unwrap(), &vec![1u64; 32]);
    // ...and the second write lands last.
    for addr in v.addresses() {
        assert_eq!(unit.peek(addr), 2);
    }
}
