//! Behavioural tests for the generation-aware issue policy on
//! channel-declaring parts: burst coalescing, group-interleaved CAS,
//! and — most importantly — the correctness boundary of the reordering
//! window (an overlapping read must never bypass an older write).

use pva_core::Vector;
use pva_sim::{BcStats, HostRequest, PvaConfig, PvaUnit};
use sdram::{DevicePreset, SdramConfig};

fn ddr3_cfg() -> PvaConfig {
    PvaConfig {
        sdram: SdramConfig::for_device(DevicePreset::Ddr3_1600),
        ..PvaConfig::default()
    }
}

fn scheduler_totals(unit: &PvaUnit) -> BcStats {
    let mut total = BcStats::default();
    for s in &unit.bc_stats() {
        total.merge(s);
    }
    total
}

fn read(base: u64, stride: u64, len: u64) -> HostRequest {
    HostRequest::Read {
        vector: Vector::new(base, stride, len).expect("valid vector"),
    }
}

#[test]
fn stride1_reads_coalesce_into_bursts() {
    // A dense read on a BL8 part: each bank controller sees consecutive
    // columns of one row and must fold them into multi-word CAS bursts,
    // so the device records fewer CAS commands than elements.
    let mut unit = PvaUnit::new(ddr3_cfg()).unwrap();
    let reqs: Vec<HostRequest> = (0..8u64).map(|i| read(i * 512, 1, 32)).collect();
    unit.run(reqs).unwrap();
    let sched = scheduler_totals(&unit);
    assert_eq!(sched.elements_read, 256);
    assert!(
        sched.coalesced_bursts > 0,
        "dense stride-1 traffic must coalesce: {sched:?}"
    );
    let cas = unit.sdram_stats().reads;
    assert!(
        cas < 256,
        "coalescing must shrink the CAS count below the element count, got {cas}"
    );
}

#[test]
fn cross_group_traffic_interleaves_cas() {
    // Bases 0 and 8192 land in internal banks 0 and 1 of every external
    // bank (16 external banks x 512-column pages), which are bank
    // groups 0 and 1 on the DDR3 part. With both vector contexts live,
    // the policy must alternate groups so tCCD_S applies.
    let mut unit = PvaUnit::new(ddr3_cfg()).unwrap();
    unit.run(vec![
        read(0, 1, 32),
        read(8192, 1, 32),
        read(32, 1, 32),
        read(8192 + 32, 1, 32),
    ])
    .unwrap();
    let sched = scheduler_totals(&unit);
    assert!(
        sched.group_switches > 0,
        "cross-group traffic must record group switches: {sched:?}"
    );
}

#[test]
fn overlapping_read_does_not_bypass_an_older_write() {
    // The reordering window may pull a read past an older write only
    // when their address ranges are provably disjoint. Here they alias
    // exactly, so the read must drain after the write commits and
    // return the written data, not the preloaded values.
    let mut unit = PvaUnit::new(ddr3_cfg()).unwrap();
    let v = Vector::new(0x2000, 1, 32).unwrap();
    for addr in v.addresses() {
        unit.preload(addr, 0xDEAD_0000);
    }
    let fresh: Vec<u64> = (0..32).map(|i| 0xF00D_0000 + i).collect();
    // A leading read parks the window's anchor on Read polarity, making
    // the bypass of the write maximally tempting.
    let r = unit
        .run(vec![
            read(0x4000, 1, 32),
            HostRequest::Write {
                vector: v,
                data: fresh.clone(),
            },
            HostRequest::Read { vector: v },
        ])
        .unwrap();
    assert_eq!(
        r.read_data(2),
        &fresh[..],
        "an aliasing read bypassed the older write"
    );
}

#[test]
fn disjoint_read_may_bypass_and_stays_correct() {
    // The legal half of the same rule: a read whose range is disjoint
    // from every skipped write returns its own memory regardless of
    // drain order.
    let mut unit = PvaUnit::new(ddr3_cfg()).unwrap();
    let w = Vector::new(0x2000, 1, 32).unwrap();
    let r_vec = Vector::new(0x9000, 1, 32).unwrap();
    for (i, addr) in r_vec.addresses().enumerate() {
        unit.preload(addr, 0xAAAA_0000 + i as u64);
    }
    let fresh: Vec<u64> = (0..32).map(|i| 0xF00D_0000 + i).collect();
    let r = unit
        .run(vec![
            read(0x4000, 1, 32),
            HostRequest::Write {
                vector: w,
                data: fresh.clone(),
            },
            HostRequest::Read { vector: r_vec },
        ])
        .unwrap();
    let got = r.read_data(2);
    for (i, &word) in got.iter().enumerate() {
        assert_eq!(word, 0xAAAA_0000 + i as u64, "element {i}");
    }
    // And the write still lands.
    for (i, addr) in w.addresses().enumerate() {
        assert_eq!(unit.peek(addr), fresh[i], "written element {i}");
    }
}
