//! End-to-end robustness behaviour: watchdog on unrecoverable stalls,
//! bounded retry with flagged delivery, graceful degradation around a
//! hard-failed internal bank, and ECC correction through the full
//! gather path.

use pva_core::{PvaError, Vector};
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

/// A config whose every device has internal bank 0 hard-failed.
fn dead_bank_config() -> PvaConfig {
    let mut cfg = PvaConfig::default();
    cfg.sdram.fault.hard_failed_bank = Some(0);
    cfg
}

#[test]
fn watchdog_fires_on_unrecoverable_stall() {
    // Dead internal bank, no degradation, unbounded retries: every
    // element of a unit-stride line maps to the dead bank, so the unit
    // retries forever without depositing anything. The watchdog must
    // turn that hang into a typed error.
    let mut cfg = dead_bank_config();
    cfg.degradation = false;
    cfg.max_read_retries = u32::MAX;
    cfg.watchdog_cycles = 3_000;
    let mut unit = PvaUnit::new(cfg).unwrap();
    let v = Vector::new(0, 1, 32).unwrap();
    let err = unit.run(vec![HostRequest::Read { vector: v }]).unwrap_err();
    match err {
        PvaError::Watchdog {
            cycle,
            stalled_txns,
        } => {
            assert!(cycle >= 3_000);
            assert_eq!(stalled_txns, 1);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn watchdog_does_not_fire_while_idle_or_progressing() {
    let cfg = PvaConfig {
        watchdog_cycles: 500,
        ..PvaConfig::default()
    };
    let mut unit = PvaUnit::new(cfg).unwrap();
    // A long idle stretch is not a stall.
    for _ in 0..10_000 {
        unit.step().unwrap();
    }
    // And a healthy batch completes fine under a tight watchdog.
    let reqs: Vec<HostRequest> = (0..8u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 640, 19, 32).unwrap(),
        })
        .collect();
    let r = unit.run(reqs).unwrap();
    assert_eq!(r.completions.len(), 8);
}

#[test]
fn exhausted_retries_deliver_flagged_elements_not_hangs() {
    let mut cfg = dead_bank_config();
    cfg.degradation = false;
    cfg.max_read_retries = 2;
    cfg.retry_backoff_cycles = 4;
    let mut unit = PvaUnit::new(cfg).unwrap();
    let v = Vector::new(0, 1, 32).unwrap();
    let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    // Every element hit the dead bank; each was retried to the bound and
    // then delivered flagged, so the transaction completed.
    let mut flagged = r.completions[0].faulted.clone();
    flagged.sort_unstable();
    let expected: Vec<u64> = (0..32).collect();
    assert_eq!(flagged, expected);
    let retries: u64 = r.bc_stats.iter().map(|b| b.read_retries).sum();
    let exhausted: u64 = r.bc_stats.iter().map(|b| b.retries_exhausted).sum();
    assert_eq!(retries, 32 * 2);
    assert_eq!(exhausted, 32);
    // The corruption was *detected*, never silent.
    assert!(r.sdram.detected_uncorrectable > 0);
    assert_eq!(r.sdram.silent, 0);
}

#[test]
fn degradation_remaps_dead_bank_and_round_trips_data() {
    // Degradation on (default): accesses to the dead internal bank are
    // serialized through its neighbour, and scatter/gather round-trips.
    let mut unit = PvaUnit::new(dead_bank_config()).unwrap();
    let v = Vector::new(0, 1, 32).unwrap();
    let line: Vec<u64> = (0..32).map(|i| 0xFEED_0000 + i).collect();
    let w = unit
        .run(vec![HostRequest::Write {
            vector: v,
            data: line.clone(),
        }])
        .unwrap();
    assert!(w.completions[0].faulted.is_empty());
    let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    assert_eq!(r.read_data(0), &line[..]);
    assert!(r.completions[0].faulted.is_empty());
    let remapped: u64 = r.bc_stats.iter().map(|b| b.remapped_accesses).sum();
    assert!(remapped > 0, "dead-bank accesses must be remapped");
    // No write ever reached the dead bank, nothing was lost.
    assert_eq!(r.sdram.dropped_writes, 0);
    assert_eq!(r.sdram.silent, 0);
    assert_eq!(r.sdram.detected_uncorrectable, 0);
}

#[test]
fn transient_faults_are_corrected_by_ecc_end_to_end() {
    let mut cfg = PvaConfig::default();
    cfg.sdram.ecc = true;
    cfg.sdram.fault.seed = 7;
    cfg.sdram.fault.transient_ppm = 200_000; // 20% of reads flip a bit
    let mut unit = PvaUnit::new(cfg).unwrap();
    let reqs: Vec<HostRequest> = (0..4u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 640, 19, 32).unwrap(),
        })
        .collect();
    let r = unit.run(reqs).unwrap();
    assert!(r.sdram.transient_faults > 0, "faults must have fired");
    assert_eq!(r.sdram.corrected, r.sdram.transient_faults);
    assert_eq!(r.sdram.silent, 0);
    assert_eq!(r.sdram.detected_uncorrectable, 0);
    for c in &r.completions {
        assert!(c.faulted.is_empty());
    }
    // And the corrected data is the true data.
    for (i, c) in r.completions.iter().enumerate() {
        let v = Vector::new(i as u64 * 640, 19, 32).unwrap();
        for (j, &w) in c.data.as_ref().unwrap().iter().enumerate() {
            assert_eq!(w, unit.peek(v.element(j as u64)), "request {i} elem {j}");
        }
    }
}

#[test]
fn fault_runs_are_reproducible_from_the_seed() {
    let run = || {
        let mut cfg = PvaConfig::default();
        cfg.sdram.ecc = true;
        cfg.sdram.fault.seed = 99;
        cfg.sdram.fault.transient_ppm = 100_000;
        let mut unit = PvaUnit::new(cfg).unwrap();
        let reqs: Vec<HostRequest> = (0..4u64)
            .map(|i| HostRequest::Read {
                vector: Vector::new(i * 512, 7, 32).unwrap(),
            })
            .collect();
        let r = unit.run(reqs).unwrap();
        (r.cycles, r.sdram.transient_faults, r.sdram.corrected)
    };
    assert_eq!(run(), run());
}

#[test]
fn submit_rejects_mismatched_write_line() {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let v = Vector::new(0, 1, 8).unwrap();
    let err = unit
        .submit(HostRequest::Write {
            vector: v,
            data: vec![1, 2, 3],
        })
        .unwrap_err();
    assert_eq!(
        err,
        PvaError::WriteLineMismatch {
            expected: 8,
            got: 3
        }
    );
}
