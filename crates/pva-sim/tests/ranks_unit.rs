//! The PVA unit over multi-rank devices (§4.3.1 capacity scaling).

use pva_core::Vector;
use pva_sim::{HostRequest, PvaConfig, PvaUnit};
use sdram::SdramConfig;

fn two_ranks() -> SdramConfig {
    SdramConfig {
        ranks: 2,
        log2_cols: 4,
        log2_rows: 2,
        internal_banks: 4,
        ..SdramConfig::default()
    }
}

#[test]
fn pva_unit_gathers_across_ranks() {
    // Default geometry (16 banks) with small 2-rank devices: a vector
    // spanning the rank boundary of bank-local space.
    let cfg = PvaConfig {
        sdram: two_ranks(),
        ..PvaConfig::default()
    };
    let rank_words = two_ranks().capacity_words() / 2; // per-bank local words
                                                       // Global addresses: bank-local addr = global >> 4. Put elements
                                                       // around local rank_size, i.e. global around rank_words << 4.
    let base = (rank_words << 4) - 16 * 8;
    let v = Vector::new(base, 16, 16).unwrap(); // single bank, crosses ranks
    let mut unit = PvaUnit::new(cfg).unwrap();
    for (i, addr) in v.addresses().enumerate() {
        unit.preload(addr, 3000 + i as u64);
    }
    let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    let want: Vec<u64> = (0..16).map(|i| 3000 + i).collect();
    assert_eq!(r.read_data(0), &want[..]);
}
