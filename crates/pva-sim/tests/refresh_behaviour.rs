//! The PVA unit under periodic SDRAM refresh: work still completes,
//! data stays correct, refreshes happen at the configured rate, and the
//! throughput cost is small.

use pva_core::Vector;
use pva_sim::{HostRequest, PvaConfig, PvaUnit};
use sdram::{DevicePreset, SdramConfig};

fn refresh_config() -> PvaConfig {
    PvaConfig {
        sdram: SdramConfig::for_device(DevicePreset::SdrRefresh),
        ..PvaConfig::default()
    }
}

#[test]
fn gather_correct_under_refresh() {
    let mut unit = PvaUnit::new(refresh_config()).unwrap();
    let v = Vector::new(0x100, 7, 32).unwrap();
    for (i, addr) in v.addresses().enumerate() {
        unit.preload(addr, 4000 + i as u64);
    }
    let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    let want: Vec<u64> = (0..32).map(|i| 4000 + i).collect();
    assert_eq!(r.read_data(0), &want[..]);
}

#[test]
fn long_run_issues_refreshes_and_completes() {
    // Enough traffic to span several refresh intervals.
    let mut unit = PvaUnit::new(refresh_config()).unwrap();
    let reqs: Vec<HostRequest> = (0..256u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 64, 2, 32).unwrap(),
        })
        .collect();
    let r = unit.run(reqs).unwrap();
    assert_eq!(r.completions.len(), 256);
    assert!(r.cycles > 781, "run spans at least one refresh interval");
}

#[test]
fn refresh_overhead_is_modest() {
    // tRFC=8 every 781 cycles is ~1% of bandwidth; the pipelined batch
    // should not slow down by more than ~5%.
    let run = |cfg: PvaConfig| {
        let mut unit = PvaUnit::new(cfg).unwrap();
        let reqs: Vec<HostRequest> = (0..128u64)
            .map(|i| HostRequest::Read {
                vector: Vector::new(i * 640, 19, 32).unwrap(),
            })
            .collect();
        unit.run(reqs).unwrap().cycles
    };
    let base = run(PvaConfig::default());
    let with_refresh = run(refresh_config());
    assert!(with_refresh >= base, "refresh cannot speed things up");
    assert!(
        (with_refresh as f64) < base as f64 * 1.05,
        "refresh overhead too large: {with_refresh} vs {base}"
    );
}

#[test]
fn scatter_correct_under_refresh() {
    let mut unit = PvaUnit::new(refresh_config()).unwrap();
    // Enough writes to cross a refresh boundary.
    for batch in 0..8u64 {
        let v = Vector::new(0x4000 + batch * 2048, 5, 32).unwrap();
        let data: Vec<u64> = (0..32).map(|i| batch * 100 + i).collect();
        unit.run(vec![HostRequest::Write {
            vector: v,
            data: data.clone(),
        }])
        .unwrap();
        for (i, addr) in v.addresses().enumerate() {
            assert_eq!(unit.peek(addr), data[i]);
        }
    }
}
