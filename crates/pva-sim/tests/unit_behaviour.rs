//! End-to-end behaviour of the PVA unit: functional correctness of
//! gather/scatter for every stride class, and the timing shapes the
//! paper's evaluation depends on.

use pva_core::Vector;
use pva_sim::{HostRequest, PvaConfig, PvaUnit, RowPolicy};

/// Runs a single gathered read and checks the returned line against
/// functional memory.
fn check_gather(stride: u64, base: u64, len: u64) -> u64 {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let v = Vector::new(base, stride, len).unwrap();
    // Preload distinctive values.
    for (i, addr) in v.addresses().enumerate() {
        unit.preload(addr, 0xC0DE_0000 + i as u64);
    }
    let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    let line = r.read_data(0);
    assert_eq!(line.len(), len as usize);
    for (i, &w) in line.iter().enumerate() {
        assert_eq!(w, 0xC0DE_0000 + i as u64, "stride={stride} element {i}");
    }
    r.cycles
}

#[test]
fn gather_correct_for_all_stride_classes() {
    for stride in [1u64, 2, 3, 4, 5, 7, 8, 10, 16, 19, 32, 48, 64] {
        check_gather(stride, 0, 32);
        check_gather(stride, 13, 32);
    }
}

#[test]
fn gather_correct_for_short_vectors() {
    for len in [1u64, 2, 5, 31] {
        check_gather(19, 7, len);
        check_gather(1, 7, len);
    }
}

#[test]
fn scatter_then_gather_round_trips() {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let v = Vector::new(0x800, 19, 32).unwrap();
    let data: Vec<u64> = (0..32).map(|i| 0xBEEF_0000 + i).collect();
    unit.run(vec![HostRequest::Write {
        vector: v,
        data: data.clone(),
    }])
    .unwrap();
    // Functional check.
    for (i, addr) in v.addresses().enumerate() {
        assert_eq!(unit.peek(addr), data[i]);
    }
    // Timed gather of the same vector.
    let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    assert_eq!(r.read_data(0), &data[..]);
}

#[test]
fn interleaved_reads_and_writes_preserve_data() {
    // saxpy-like traffic: read x, read y, write y; different banks and
    // rows, exercising the polarity rule.
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let x = Vector::new(0x0, 4, 32).unwrap();
    let y = Vector::new(0x10000, 4, 32).unwrap();
    let rx = unit.run(vec![HostRequest::Read { vector: x }]).unwrap();
    let xv = rx.read_data(0).to_vec();
    let ry = unit.run(vec![HostRequest::Read { vector: y }]).unwrap();
    let yv = ry.read_data(0).to_vec();
    let sum: Vec<u64> = xv
        .iter()
        .zip(&yv)
        .map(|(a, b)| a.wrapping_add(*b))
        .collect();
    unit.run(vec![HostRequest::Write {
        vector: y,
        data: sum.clone(),
    }])
    .unwrap();
    let check = unit.run(vec![HostRequest::Read { vector: y }]).unwrap();
    assert_eq!(check.read_data(0), &sum[..]);
}

#[test]
fn many_outstanding_commands_pipeline() {
    // 16 unit-stride line reads back to back: steady-state throughput
    // must be far better than 16 x the single-command latency.
    let single = {
        let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
        let v = Vector::unit_stride(0, 32).unwrap();
        unit.run(vec![HostRequest::Read { vector: v }])
            .unwrap()
            .cycles
    };
    let batch = {
        let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
        let reqs: Vec<HostRequest> = (0..16)
            .map(|i| HostRequest::Read {
                vector: Vector::unit_stride(i * 32, 32).unwrap(),
            })
            .collect();
        unit.run(reqs).unwrap().cycles
    };
    assert!(
        batch < single * 16,
        "pipelining: batch {batch} vs 16 x single {single}"
    );
    // The bus floor is 17 cycles per command (1 request + 16 data); the
    // pipelined batch should sit near it.
    assert!(
        batch <= 16 * 17 + 32,
        "batch {batch} should approach the 17-cycle/command bus floor"
    );
}

#[test]
fn stride_19_performs_like_unit_stride() {
    // The headline property (§6.3.1): prime strides keep all 16 banks
    // busy, so a batch of stride-19 gathers costs about the same as
    // unit-stride gathers, not 16x more.
    let run_batch = |stride: u64| {
        let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
        let reqs: Vec<HostRequest> = (0..16u64)
            .map(|i| HostRequest::Read {
                vector: Vector::new(i * 32 * stride, stride, 32).unwrap(),
            })
            .collect();
        unit.run(reqs).unwrap().cycles
    };
    let s1 = run_batch(1);
    let s19 = run_batch(19);
    assert!(
        s19 < s1 * 2,
        "stride 19 ({s19}) should be within 2x of unit stride ({s1})"
    );
}

#[test]
fn single_bank_stride_is_much_slower() {
    // Stride 16 concentrates all elements in one bank: no parallelism.
    let run_batch = |stride: u64| {
        let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
        let reqs: Vec<HostRequest> = (0..8u64)
            .map(|i| HostRequest::Read {
                vector: Vector::new(i * 32 * stride, stride, 32).unwrap(),
            })
            .collect();
        unit.run(reqs).unwrap().cycles
    };
    let s19 = run_batch(19);
    let s16 = run_batch(16);
    assert!(
        s16 > s19 * 2,
        "stride 16 ({s16}) must be much slower than stride 19 ({s19})"
    );
}

#[test]
fn sram_backend_is_no_slower_than_sdram() {
    let run = |cfg: PvaConfig| {
        let mut unit = PvaUnit::new(cfg).unwrap();
        let reqs: Vec<HostRequest> = (0..8u64)
            .map(|i| HostRequest::Read {
                vector: Vector::new(i * 640, 19, 32).unwrap(),
            })
            .collect();
        unit.run(reqs).unwrap().cycles
    };
    let sdram = run(PvaConfig::default());
    let sram = run(PvaConfig::sram_backend());
    // §6.3.1 / figure 11: the SDRAM PVA comes within ~15% of SRAM, and
    // the paper itself observed SDRAM *beating* SRAM in two cases due to
    // "slight implementation differences" — both systems are bus-bound
    // here, so we require them within 15% of each other in either
    // direction.
    let (lo, hi) = (sdram.min(sram) as f64, sdram.max(sram) as f64);
    assert!(
        hi <= lo * 1.15,
        "SDRAM ({sdram}) and SRAM ({sram}) should track within 15%"
    );
}

#[test]
fn vector_longer_than_line_is_rejected() {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let v = Vector::new(0, 1, 33).unwrap();
    assert!(unit.run(vec![HostRequest::Read { vector: v }]).is_err());
}

#[test]
fn write_with_wrong_line_length_is_rejected() {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let v = Vector::new(0, 1, 32).unwrap();
    let err = unit
        .run(vec![HostRequest::Write {
            vector: v,
            data: vec![0; 3],
        }])
        .unwrap_err();
    assert_eq!(
        err,
        pva_core::PvaError::WriteLineMismatch {
            expected: 32,
            got: 3
        }
    );
}

#[test]
fn row_policies_all_produce_correct_data() {
    for policy in [
        RowPolicy::MissPredictsClose,
        RowPolicy::PaperLiteral,
        RowPolicy::AlwaysClose,
        RowPolicy::AlwaysOpen,
    ] {
        let mut cfg = PvaConfig::default();
        cfg.options.row_policy = policy;
        let mut unit = PvaUnit::new(cfg).unwrap();
        let v = Vector::new(0x100, 5, 32).unwrap();
        for (i, addr) in v.addresses().enumerate() {
            unit.preload(addr, i as u64);
        }
        let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
        let want: Vec<u64> = (0..32).collect();
        assert_eq!(r.read_data(0), &want[..], "{policy:?}");
    }
}

#[test]
fn scheduler_ablations_produce_correct_data() {
    for (ooo, promote, bypass) in [
        (false, true, true),
        (true, false, true),
        (true, true, false),
        (false, false, false),
    ] {
        let mut cfg = PvaConfig::default();
        cfg.options.out_of_order = ooo;
        cfg.options.promote_opens = promote;
        cfg.options.bypass_paths = bypass;
        let mut unit = PvaUnit::new(cfg).unwrap();
        let a = Vector::new(0, 7, 32).unwrap();
        let b = Vector::new(0x40000, 7, 32).unwrap();
        let r = unit
            .run(vec![
                HostRequest::Read { vector: a },
                HostRequest::Read { vector: b },
            ])
            .unwrap();
        for (req, v) in [(0, a), (1, b)] {
            for (i, addr) in v.addresses().enumerate() {
                assert_eq!(
                    r.read_data(req)[i],
                    unit.peek(addr),
                    "ooo={ooo} promote={promote} bypass={bypass}"
                );
            }
        }
    }
}

#[test]
fn full_transaction_ids_throttle_but_complete() {
    // 64 requests with only 8 transaction ids: everything completes, in
    // order of submission.
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let reqs: Vec<HostRequest> = (0..64u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 64, 2, 32).unwrap(),
        })
        .collect();
    let r = unit.run(reqs).unwrap();
    assert_eq!(r.completions.len(), 64);
    for (i, c) in r.completions.iter().enumerate() {
        assert_eq!(c.request_index, i);
        assert!(c.completed_at > c.issued_at);
    }
}

#[test]
fn unit_stride_latency_is_in_line_fill_ballpark() {
    // A single 32-word unit-stride gather should take a few tens of
    // cycles (the paper's serial line-fill baseline is 20 cycles; the
    // PVA's first command pays FHP/scheduler latency but wins once
    // pipelined).
    let cycles = check_gather(1, 0, 32);
    assert!(cycles >= 20, "cannot beat the raw data movement: {cycles}");
    assert!(
        cycles <= 45,
        "single line fill should be tens of cycles: {cycles}"
    );
}

#[test]
fn cvms_like_pays_subcommand_latency_only_off_pow2() {
    let lat = |cfg: PvaConfig, stride: u64| {
        let mut unit = PvaUnit::new(cfg).unwrap();
        let v = Vector::new(0, stride, 32).unwrap();
        unit.run(vec![HostRequest::Read { vector: v }])
            .unwrap()
            .cycles
    };
    // Power-of-two strides: identical (both generate subcommands fast).
    assert_eq!(lat(PvaConfig::default(), 8), lat(PvaConfig::cvms_like(), 8));
    // Non-power-of-two: the CVMS-like design pays ~10+ extra cycles.
    let d = lat(PvaConfig::cvms_like(), 19) as i64 - lat(PvaConfig::default(), 19) as i64;
    assert!((10..=13).contains(&d), "delta {d}");
}
