//! Event-trace invariants: the cycle-stamped log tells a consistent
//! story about every transaction.

use pva_core::Vector;
use pva_sim::{HostRequest, OpKind, PvaConfig, PvaUnit, TraceEvent};

fn traced_config() -> PvaConfig {
    PvaConfig {
        record_trace: true,
        ..PvaConfig::default()
    }
}

fn run_traced(reqs: Vec<HostRequest>) -> Vec<TraceEvent> {
    let mut unit = PvaUnit::new(traced_config()).unwrap();
    unit.run(reqs).unwrap();
    unit.take_events()
}

#[test]
fn trace_is_empty_when_disabled() {
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let v = Vector::new(0, 2, 32).unwrap();
    unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    assert!(unit.take_events().is_empty());
}

#[test]
fn trace_is_cycle_ordered() {
    let events = run_traced(
        (0..4u64)
            .map(|i| HostRequest::Read {
                vector: Vector::new(i * 128, 3, 32).unwrap(),
            })
            .collect(),
    );
    assert!(!events.is_empty());
    for w in events.windows(2) {
        assert!(w[0].cycle() <= w[1].cycle());
    }
}

#[test]
fn every_transaction_tells_a_complete_story() {
    let v = Vector::new(0x40, 19, 32).unwrap();
    let events = run_traced(vec![HostRequest::Read { vector: v }]);
    let broadcast = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Broadcast {
                cycle,
                kind: OpKind::Read,
                ..
            } => Some(*cycle),
            _ => None,
        })
        .expect("broadcast logged");
    let reads: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::BankOp { cycle, op, .. } if op.starts_with("RD") => Some(*cycle),
            _ => None,
        })
        .collect();
    assert_eq!(reads.len(), 32, "one RD per element");
    assert!(reads.iter().all(|&c| c > broadcast));
    let stage = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::StageStart {
                cycle,
                kind: OpKind::Read,
                ..
            } => Some(*cycle),
            _ => None,
        })
        .expect("stage logged");
    let done = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Completed { cycle, .. } => Some(*cycle),
            _ => None,
        })
        .expect("completion logged");
    assert!(
        stage >= *reads.iter().max().unwrap(),
        "staging after last read issue"
    );
    assert!(done > stage);
}

#[test]
fn write_story_stages_before_banks_write() {
    let v = Vector::new(0x900, 5, 32).unwrap();
    let events = run_traced(vec![HostRequest::Write {
        vector: v,
        data: vec![7; 32],
    }]);
    let stage = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::StageStart {
                cycle,
                kind: OpKind::Write,
                ..
            } => Some(*cycle),
            _ => None,
        })
        .expect("STAGE_WRITE logged");
    let first_wr = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::BankOp { cycle, op, .. } if op.starts_with("WR") => Some(*cycle),
            _ => None,
        })
        .min()
        .expect("bank writes logged");
    assert!(first_wr > stage, "data staged before any bank writes it");
}

#[test]
fn activates_precede_accesses_per_bank() {
    let v = Vector::new(0, 1, 32).unwrap();
    let events = run_traced(vec![HostRequest::Read { vector: v }]);
    for bank in 0..16usize {
        let acts: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BankOp {
                    cycle,
                    bank: b,
                    op: "ACT",
                    ..
                } if *b == bank => Some(*cycle),
                _ => None,
            })
            .collect();
        let reads: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BankOp {
                    cycle, bank: b, op, ..
                } if *b == bank && op.starts_with("RD") => Some(*cycle),
                _ => None,
            })
            .collect();
        assert!(!acts.is_empty() && !reads.is_empty(), "bank {bank} active");
        assert!(acts[0] < reads[0], "bank {bank}: activate before read");
    }
}
