//! The next-event fast path (`PvaConfig::fast_sim`) must be cycle-exact:
//! every run — cycles, completions, bus stats, per-bank stats, device
//! stats — must be bit-identical to the plain per-cycle reference model,
//! across strides, mixed read/write traffic, refresh, faults and the
//! watchdog.

use pva_core::{PvaError, Vector};
use pva_sim::{HostRequest, PvaConfig, PvaUnit, RunResult};

fn run_with(cfg: PvaConfig, requests: &[HostRequest]) -> Result<RunResult, PvaError> {
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    unit.run(requests.to_vec())
}

fn assert_identical(cfg: PvaConfig, requests: &[HostRequest], label: &str) {
    let mut fast_cfg = cfg;
    fast_cfg.fast_sim = true;
    let mut ref_cfg = cfg;
    ref_cfg.fast_sim = false;
    let fast = run_with(fast_cfg, requests).expect("fast run succeeds");
    let slow = run_with(ref_cfg, requests).expect("reference run succeeds");
    assert_eq!(fast.cycles, slow.cycles, "{label}: cycles");
    assert_eq!(
        fast.completions.len(),
        slow.completions.len(),
        "{label}: completion count"
    );
    for (f, s) in fast.completions.iter().zip(&slow.completions) {
        assert_eq!(f.request_index, s.request_index, "{label}: request order");
        assert_eq!(f.issued_at, s.issued_at, "{label}: issue cycle");
        assert_eq!(f.completed_at, s.completed_at, "{label}: completion cycle");
        assert_eq!(f.data, s.data, "{label}: gathered data");
        assert_eq!(f.faulted, s.faulted, "{label}: fault flags");
    }
    let (fs, ss) = (fast.stats, slow.stats);
    assert_eq!(fs.cycles, ss.cycles, "{label}: stat cycles");
    assert_eq!(
        fs.request_cycles, ss.request_cycles,
        "{label}: request cycles"
    );
    assert_eq!(fs.data_cycles, ss.data_cycles, "{label}: data cycles");
    assert_eq!(fs.idle_cycles, ss.idle_cycles, "{label}: idle cycles");
    assert_eq!(fs.commands, ss.commands, "{label}: commands");
    for (i, (f, s)) in fast.bc_stats.iter().zip(&slow.bc_stats).enumerate() {
        assert_eq!(f.busy_cycles, s.busy_cycles, "{label}: bc {i} busy cycles");
        assert_eq!(f.elements_read, s.elements_read, "{label}: bc {i} reads");
        assert_eq!(
            f.elements_written, s.elements_written,
            "{label}: bc {i} writes"
        );
        assert_eq!(f.turnarounds, s.turnarounds, "{label}: bc {i} turnarounds");
        assert_eq!(f.row_hits, s.row_hits, "{label}: bc {i} row hits");
        assert_eq!(f.activates, s.activates, "{label}: bc {i} activates");
        assert_eq!(f.read_retries, s.read_retries, "{label}: bc {i} retries");
    }
    assert_eq!(fast.sdram, slow.sdram, "{label}: device stats");
}

fn read(base: u64, stride: u64, len: u64) -> HostRequest {
    HostRequest::Read {
        vector: Vector::new(base, stride, len).expect("valid vector"),
    }
}

fn write(base: u64, stride: u64, len: u64) -> HostRequest {
    HostRequest::Write {
        vector: Vector::new(base, stride, len).expect("valid vector"),
        data: (0..len).map(|i| 0xC0DE_0000 + i).collect(),
    }
}

#[test]
fn single_reads_match_across_strides() {
    for stride in [1u64, 2, 4, 8, 16, 19, 48] {
        assert_identical(
            PvaConfig::default(),
            &[read(0x400, stride, 32)],
            &format!("stride {stride}"),
        );
    }
}

#[test]
fn batched_mixed_traffic_matches() {
    let reqs: Vec<HostRequest> = (0..8u64)
        .map(|i| {
            let base = i * 512 * 16;
            if i % 2 == 0 {
                read(base, 16, 32)
            } else {
                write(base, 16, 32)
            }
        })
        .collect();
    assert_identical(PvaConfig::default(), &reqs, "rw mix stride 16");
}

#[test]
fn sram_backend_matches() {
    assert_identical(
        PvaConfig::sram_backend(),
        &[read(0, 19, 32), write(1 << 20, 19, 32)],
        "sram backend",
    );
}

#[test]
fn refresh_heavy_config_matches() {
    let mut cfg = PvaConfig::default();
    cfg.sdram.refresh_interval = 781;
    // Sparse single-bank traffic leaves long quiescent windows that the
    // fast path must not jump past a due refresh.
    let reqs: Vec<HostRequest> = (0..6u64).map(|i| read(i * 512 * 16, 16, 8)).collect();
    assert_identical(cfg, &reqs, "refresh interval 781");
}

#[test]
fn faulty_device_with_retries_matches() {
    let mut cfg = PvaConfig::default();
    cfg.sdram.fault.transient_ppm = 100_000;
    cfg.sdram.fault.seed = 7;
    assert_identical(
        cfg,
        &[read(0, 1, 32), read(1 << 16, 19, 32)],
        "transient faults",
    );

    let mut cfg = PvaConfig::default();
    cfg.sdram.ecc = false;
    cfg.sdram.fault.hard_failed_bank = Some(0);
    cfg.degradation = false;
    cfg.watchdog_cycles = 50_000;
    assert_identical(cfg, &[read(0, 1, 32)], "hard-failed bank, flagged");
}

#[test]
fn block_interleaved_geometry_matches() {
    let cfg = PvaConfig {
        geometry: pva_core::Geometry::new(16, 4, 1).expect("valid geometry"),
        ..PvaConfig::default()
    };
    assert_identical(
        cfg,
        &[read(0, 3, 32), write(1 << 18, 5, 32)],
        "block interleave",
    );
}

#[test]
fn watchdog_fires_at_identical_cycle() {
    // An unrecoverable retry loop: poisoned data, retries never succeed.
    let mut cfg = PvaConfig::default();
    cfg.sdram.ecc = false;
    cfg.sdram.fault.hard_failed_bank = Some(0);
    cfg.degradation = false;
    cfg.max_read_retries = u32::MAX;
    cfg.watchdog_cycles = 3_000;
    let fire = |fast: bool| -> (u64, usize) {
        let mut c = cfg;
        c.fast_sim = fast;
        match run_with(c, &[read(0, 16, 32)]) {
            Err(PvaError::Watchdog {
                cycle,
                stalled_txns,
            }) => (cycle, stalled_txns),
            other => panic!("expected watchdog, got {other:?}"),
        }
    };
    assert_eq!(fire(true), fire(false), "watchdog cycle and stall count");
}
