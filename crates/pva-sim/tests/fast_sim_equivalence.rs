//! The next-event fast path (`PvaConfig::fast_sim`) must be cycle-exact:
//! every run — cycles, completions, bus stats, per-bank stats, device
//! stats — must be bit-identical to the plain per-cycle reference model,
//! across strides, mixed read/write traffic, refresh, faults and the
//! watchdog.

use kernels::{Alignment, Kernel, ARRAY_REGION, LINE_WORDS, STRIDES};
use pva_core::{PvaError, Vector};
use pva_sim::{HostRequest, OpKind, PvaConfig, PvaUnit, RunResult};
use sdram::{DevicePreset, SdramConfig};

fn run_with(cfg: PvaConfig, requests: &[HostRequest]) -> Result<RunResult, PvaError> {
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    unit.run(requests.to_vec())
}

fn assert_identical(cfg: PvaConfig, requests: &[HostRequest], label: &str) {
    let mut fast_cfg = cfg;
    fast_cfg.fast_sim = true;
    let mut ref_cfg = cfg;
    ref_cfg.fast_sim = false;
    let fast = run_with(fast_cfg, requests).expect("fast run succeeds");
    let slow = run_with(ref_cfg, requests).expect("reference run succeeds");
    assert_eq!(fast.cycles, slow.cycles, "{label}: cycles");
    assert_eq!(
        fast.completions.len(),
        slow.completions.len(),
        "{label}: completion count"
    );
    for (f, s) in fast.completions.iter().zip(&slow.completions) {
        assert_eq!(f.request_index, s.request_index, "{label}: request order");
        assert_eq!(f.issued_at, s.issued_at, "{label}: issue cycle");
        assert_eq!(f.completed_at, s.completed_at, "{label}: completion cycle");
        assert_eq!(f.data, s.data, "{label}: gathered data");
        assert_eq!(f.faulted, s.faulted, "{label}: fault flags");
    }
    let (fs, ss) = (fast.stats, slow.stats);
    assert_eq!(fs.cycles, ss.cycles, "{label}: stat cycles");
    assert_eq!(
        fs.request_cycles, ss.request_cycles,
        "{label}: request cycles"
    );
    assert_eq!(fs.data_cycles, ss.data_cycles, "{label}: data cycles");
    assert_eq!(fs.idle_cycles, ss.idle_cycles, "{label}: idle cycles");
    assert_eq!(fs.commands, ss.commands, "{label}: commands");
    for (i, (f, s)) in fast.bc_stats.iter().zip(&slow.bc_stats).enumerate() {
        assert_eq!(f.busy_cycles, s.busy_cycles, "{label}: bc {i} busy cycles");
        assert_eq!(f.elements_read, s.elements_read, "{label}: bc {i} reads");
        assert_eq!(
            f.elements_written, s.elements_written,
            "{label}: bc {i} writes"
        );
        assert_eq!(f.turnarounds, s.turnarounds, "{label}: bc {i} turnarounds");
        assert_eq!(f.row_hits, s.row_hits, "{label}: bc {i} row hits");
        assert_eq!(f.activates, s.activates, "{label}: bc {i} activates");
        assert_eq!(f.read_retries, s.read_retries, "{label}: bc {i} retries");
    }
    assert_eq!(fast.sdram, slow.sdram, "{label}: device stats");
}

fn read(base: u64, stride: u64, len: u64) -> HostRequest {
    HostRequest::Read {
        vector: Vector::new(base, stride, len).expect("valid vector"),
    }
}

fn write(base: u64, stride: u64, len: u64) -> HostRequest {
    HostRequest::Write {
        vector: Vector::new(base, stride, len).expect("valid vector"),
        data: (0..len).map(|i| 0xC0DE_0000 + i).collect(),
    }
}

#[test]
fn single_reads_match_across_strides() {
    for stride in [1u64, 2, 4, 8, 16, 19, 48] {
        assert_identical(
            PvaConfig::default(),
            &[read(0x400, stride, 32)],
            &format!("stride {stride}"),
        );
    }
}

#[test]
fn batched_mixed_traffic_matches() {
    let reqs: Vec<HostRequest> = (0..8u64)
        .map(|i| {
            let base = i * 512 * 16;
            if i % 2 == 0 {
                read(base, 16, 32)
            } else {
                write(base, 16, 32)
            }
        })
        .collect();
    assert_identical(PvaConfig::default(), &reqs, "rw mix stride 16");
}

#[test]
fn sram_backend_matches() {
    assert_identical(
        PvaConfig::sram_backend(),
        &[read(0, 19, 32), write(1 << 20, 19, 32)],
        "sram backend",
    );
}

#[test]
fn refresh_heavy_config_matches() {
    let mut cfg = PvaConfig::default();
    cfg.sdram.refresh_interval = 781;
    // Sparse single-bank traffic leaves long quiescent windows that the
    // fast path must not jump past a due refresh.
    let reqs: Vec<HostRequest> = (0..6u64).map(|i| read(i * 512 * 16, 16, 8)).collect();
    assert_identical(cfg, &reqs, "refresh interval 781");
}

#[test]
fn faulty_device_with_retries_matches() {
    let mut cfg = PvaConfig::default();
    cfg.sdram.fault.transient_ppm = 100_000;
    cfg.sdram.fault.seed = 7;
    assert_identical(
        cfg,
        &[read(0, 1, 32), read(1 << 16, 19, 32)],
        "transient faults",
    );

    let mut cfg = PvaConfig::default();
    cfg.sdram.ecc = false;
    cfg.sdram.fault.hard_failed_bank = Some(0);
    cfg.degradation = false;
    cfg.watchdog_cycles = 50_000;
    assert_identical(cfg, &[read(0, 1, 32)], "hard-failed bank, flagged");
}

#[test]
fn block_interleaved_geometry_matches() {
    let cfg = PvaConfig {
        geometry: pva_core::Geometry::new(16, 4, 1).expect("valid geometry"),
        ..PvaConfig::default()
    };
    assert_identical(
        cfg,
        &[read(0, 3, 32), write(1 << 18, 5, 32)],
        "block interleave",
    );
}

#[test]
fn watchdog_fires_at_identical_cycle() {
    // An unrecoverable retry loop: poisoned data, retries never succeed.
    let mut cfg = PvaConfig::default();
    cfg.sdram.ecc = false;
    cfg.sdram.fault.hard_failed_bank = Some(0);
    cfg.degradation = false;
    cfg.max_read_retries = u32::MAX;
    cfg.watchdog_cycles = 3_000;
    let fire = |fast: bool| -> (u64, usize) {
        let mut c = cfg;
        c.fast_sim = fast;
        match run_with(c, &[read(0, 16, 32)]) {
            Err(PvaError::Watchdog {
                cycle,
                stalled_txns,
            }) => (cycle, stalled_txns),
            other => panic!("expected watchdog, got {other:?}"),
        }
    };
    assert_eq!(fire(true), fire(false), "watchdog cycle and stall count");
}

#[test]
fn decaying_rows_match() {
    // Retention decay across an idle-heavy run: a row written early
    // must lose bits identically in both models when revisited past
    // the retention window — a fast-path jump that mis-lands around a
    // retention deadline would flip different bits.
    //
    // Time only passes while work is in flight, so a retry storm on a
    // hard-failed internal bank stretches the clock (exponential
    // backoff leaves long idle gaps the fast path jumps over) while a
    // healthy bank's row quietly decays. The revisit runs as a second
    // batch on the same unit — the clock persists across runs.
    let run2 = |fast: bool| -> (RunResult, RunResult) {
        let mut cfg = PvaConfig {
            fast_sim: fast,
            ..PvaConfig::default()
        };
        cfg.sdram.ecc = false; // poisoned reads stay poisoned -> retries
        cfg.sdram.fault.hard_failed_bank = Some(0);
        cfg.degradation = false; // no spare remap: every retry fails
        cfg.max_read_retries = 7;
        cfg.retry_backoff_cycles = 16;
        cfg.sdram.fault.retention_cycles = 500;
        cfg.sdram.fault.seed = 11;
        let mut unit = PvaUnit::new(cfg).expect("valid config");
        // 8193 = external bank 1, internal bank 1: clear of the failed
        // internal bank 0 on every device.
        let p1 = unit
            .run(vec![write(8193, 16, 32), read(0, 16, 32)])
            .expect("phase 1 completes");
        let p2 = unit
            .run(vec![read(8193, 16, 32)])
            .expect("phase 2 completes");
        (p1, p2)
    };
    let (f1, f2) = run2(true);
    let (s1, s2) = run2(false);
    assert_eq!(f1.cycles, s1.cycles, "phase-1 cycles");
    assert_eq!(f2.cycles, s2.cycles, "phase-2 cycles");
    assert_eq!(
        f2.completions[0].data, s2.completions[0].data,
        "decayed data"
    );
    assert_eq!(f2.sdram, s2.sdram, "device stats");
    assert!(
        f2.sdram.decayed_words > 0,
        "the retention window must actually lapse"
    );
    assert!(
        f1.cycles > 500,
        "the retry storm must stretch the clock past the window"
    );
}

#[test]
fn combined_fault_campaign_matches() {
    // Every fault mechanism at once — transient flips on reads, slow
    // retention decay under refresh, and a hard-failed internal bank
    // remapped into the spare by the degradation layer.
    let mut cfg = PvaConfig::default();
    cfg.sdram.fault.transient_ppm = 50_000;
    cfg.sdram.fault.retention_cycles = 2_000;
    cfg.sdram.fault.hard_failed_bank = Some(1);
    cfg.sdram.fault.seed = 23;
    cfg.sdram.refresh_interval = 781;
    let reqs: Vec<HostRequest> = (0..6u64)
        .map(|i| {
            let base = i * 512 * 16;
            if i % 3 == 2 {
                write(base, 8, 32)
            } else {
                read(base, 8, 32)
            }
        })
        .collect();
    assert_identical(cfg, &reqs, "transient + decay + hard bank");
}

/// Converts a kernel trace into host requests (writes carry a
/// deterministic payload, as the memsys adapter's do).
fn requests_of(trace: &[memsys::TraceOp]) -> Vec<HostRequest> {
    trace
        .iter()
        .map(|op| match op.kind {
            OpKind::Read => HostRequest::Read { vector: op.vector },
            OpKind::Write => HostRequest::Write {
                vector: op.vector,
                data: vec![0u64; op.vector.length() as usize],
            },
        })
        .collect()
}

#[test]
fn fig7_kernel_stride_sweep_matches() {
    // The full figure-7 grid the throughput gate measures: every
    // kernel x stride cell must agree between the two models, not just
    // the hand-picked single-vector cases above.
    const FIG7_KERNELS: [Kernel; 3] = [Kernel::Copy, Kernel::Saxpy, Kernel::Scale];
    // A quarter-length sweep keeps the debug-build runtime reasonable
    // while preserving every per-cell access pattern.
    const ELEMENTS: u64 = 256;
    for kernel in FIG7_KERNELS {
        for stride in STRIDES {
            let bases = Alignment::BankStagger.bases(kernel.array_count(), ARRAY_REGION);
            let trace = kernel.trace(&bases, stride, ELEMENTS, LINE_WORDS);
            assert_identical(
                PvaConfig::default(),
                &requests_of(&trace),
                &format!("{kernel}/s{stride}"),
            );
        }
    }
}

/// A config on the named channel-declaring device preset. These are the
/// parts where the generation-aware policy actually reorders, defers and
/// coalesces, so the fast path has new wake sources (the channel-gate
/// expiry arm) to get wrong.
fn preset_cfg(preset: DevicePreset) -> PvaConfig {
    PvaConfig {
        sdram: SdramConfig::for_device(preset),
        ..PvaConfig::default()
    }
}

#[test]
fn generation_parts_kernel_sweep_matches() {
    // The scheduler's channel-aware decisions (group-interleaved CAS,
    // tFAW deferral, burst coalescing) must not desynchronize the
    // next-event fast path from the reference stepper on the parts that
    // enable them.
    const ELEMENTS: u64 = 256;
    for preset in [DevicePreset::Ddr3_1600, DevicePreset::Hbm2Like] {
        for kernel in [Kernel::Copy, Kernel::Saxpy, Kernel::Scale] {
            for stride in [1u64, 16, 19] {
                let bases = Alignment::BankStagger.bases(kernel.array_count(), ARRAY_REGION);
                let trace = kernel.trace(&bases, stride, ELEMENTS, LINE_WORDS);
                assert_identical(
                    preset_cfg(preset),
                    &requests_of(&trace),
                    &format!("{}/{kernel}/s{stride}", preset.name()),
                );
            }
        }
    }
}

#[test]
fn generation_parts_fault_campaign_matches() {
    // Fault handling interleaves retries and backoff timers with the
    // channel gates; both models must walk the identical schedule.
    for preset in [DevicePreset::Ddr3_1600, DevicePreset::Hbm2Like] {
        let mut cfg = preset_cfg(preset);
        cfg.sdram.fault.transient_ppm = 50_000;
        // Must exceed these presets' refresh intervals (6240 / 3900).
        cfg.sdram.fault.retention_cycles = 8_000;
        cfg.sdram.fault.hard_failed_bank = Some(1);
        cfg.sdram.fault.seed = 23;
        let reqs: Vec<HostRequest> = (0..6u64)
            .map(|i| {
                let base = i * 512 * 16;
                if i % 3 == 2 {
                    write(base, 8, 32)
                } else {
                    read(base, 8, 32)
                }
            })
            .collect();
        assert_identical(cfg, &reqs, &format!("{} faults", preset.name()));
    }
}

/// Runs `requests` with the generation-aware policy toggled and returns
/// both results for identity comparison.
fn run_policy_pair(cfg: PvaConfig, requests: &[HostRequest]) -> (RunResult, RunResult) {
    let mut on = cfg;
    on.options.generation_aware = true;
    let mut off = cfg;
    off.options.generation_aware = false;
    (
        run_with(on, requests).expect("policy-on run succeeds"),
        run_with(off, requests).expect("policy-off run succeeds"),
    )
}

#[test]
fn generation_policy_is_inert_on_sdr_parts() {
    // On 1-group, burst-length-1 parts every generation-aware decision
    // degenerates to the arrival-order policy: no group to prefer, no
    // tFAW to pace, nothing to coalesce, and the polarity window never
    // extends (the extension is gated on declared channel structure).
    // The committed goldens pin this for the bench kernels; this test
    // pins it for the simulator directly, fault paths included.
    let kernel_reqs = {
        let bases = Alignment::BankStagger.bases(2, ARRAY_REGION);
        requests_of(&Kernel::Copy.trace(&bases, 1, 256, LINE_WORDS))
    };
    let mut faulty = PvaConfig::default();
    faulty.sdram.fault.transient_ppm = 50_000;
    faulty.sdram.fault.seed = 23;
    let cases: Vec<(PvaConfig, Vec<HostRequest>, &str)> = vec![
        (PvaConfig::default(), kernel_reqs, "sdr copy s1"),
        (
            PvaConfig::default(),
            (0..8u64)
                .map(|i| {
                    let base = i * 512 * 16;
                    if i % 2 == 0 {
                        read(base, 16, 32)
                    } else {
                        write(base, 16, 32)
                    }
                })
                .collect(),
            "sdr rw mix",
        ),
        (
            faulty,
            vec![read(0, 1, 32), read(1 << 16, 19, 32)],
            "sdr faults",
        ),
    ];
    for (cfg, reqs, label) in cases {
        assert!(
            !cfg.sdram.declares_channel_structure(),
            "{label}: the identity claim only holds for SDR-era parts"
        );
        let (on, off) = run_policy_pair(cfg, &reqs);
        assert_eq!(on.cycles, off.cycles, "{label}: cycles");
        assert_eq!(on.completions, off.completions, "{label}: completions");
        assert_eq!(on.sdram, off.sdram, "{label}: device stats");
    }
}

#[test]
fn event_accounting_covers_every_cycle() {
    // The fast path's ledger must balance: every simulated cycle is
    // either executed or part of a recorded jump, and the jump
    // histogram's population matches the jump count.
    let mut unit = PvaUnit::new(PvaConfig::default()).expect("valid config");
    let reqs: Vec<HostRequest> = (0..6u64).map(|i| read(i * 512 * 16, 16, 32)).collect();
    let r = unit.run(reqs).expect("run succeeds");
    let ev = unit.event_stats();
    assert_eq!(
        ev.executed_cycles + ev.skipped_cycles,
        r.cycles,
        "executed + skipped covers the run"
    );
    assert_eq!(
        ev.jump_hist.iter().sum::<u64>(),
        ev.jumps,
        "histogram population equals the jump count"
    );
    assert!(ev.skipped_cycles > 0, "sparse traffic must skip cycles");
    assert!(ev.events_popped > 0, "wake-ups drive every executed tick");
}
