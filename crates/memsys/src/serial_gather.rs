//! The "gathering pipelined serial SDRAM" comparator (§6.1).
//!
//! A 16-module word-interleaved SDRAM system with a closed-page policy
//! that gathers vectors *element by element* through a single serial
//! address stream — the straightforward alternative the PVA's broadcast
//! approach is measured against (§4.1: "the straightforward alternative
//! of having a centralized vector controller issue the stream of
//! addresses, one per cycle").
//!
//! Per the paper's idealizations: RAS latencies overlap with activity on
//! other banks for all but the first element of each command, commands
//! never cross DRAM pages (pages stay open within a command), and the
//! precharge cost is paid once at the start of each command. So a
//! command of `L` elements costs
//!
//! ```text
//! t_rp + t_rcd + t_cas + L    cycles
//! ```
//!
//! and commands execute serially (it is a *serial* controller).

use crate::trace::{trace_elements, MemorySystem, RunOutcome, RunStats, TraceOp, WORD_BYTES};

/// Configuration of the serial gathering system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialGatherConfig {
    /// Precharge cost paid at each command start (`tRP`).
    pub t_rp: u64,
    /// First-element RAS (`tRCD`); later RAS latencies overlap.
    pub t_rcd: u64,
    /// CAS latency to the first data word.
    pub t_cas: u64,
}

impl Default for SerialGatherConfig {
    fn default() -> Self {
        SerialGatherConfig {
            t_rp: 2,
            t_rcd: 2,
            t_cas: 2,
        }
    }
}

/// The gathering pipelined serial SDRAM system.
///
/// # Examples
///
/// ```
/// use memsys::{MemorySystem, SerialGather, TraceOp};
/// use pva_core::Vector;
///
/// let mut sys = SerialGather::default();
/// // 32 elements: 2 (precharge) + 2 (RAS) + 2 (CAS) + 32 = 38 cycles,
/// // for any stride — it only moves the words the application needs.
/// for stride in [1u64, 4, 16, 19] {
///     let t = [TraceOp::read(Vector::new(0, stride, 32)?)];
///     assert_eq!(sys.run_trace(&t).cycles, 38);
/// }
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SerialGather {
    config: SerialGatherConfig,
}

impl SerialGather {
    /// Creates the system with explicit parameters.
    pub fn new(config: SerialGatherConfig) -> Self {
        SerialGather { config }
    }

    /// Cycles for one vector command of `len` elements.
    pub fn command_cycles(&self, len: u64) -> u64 {
        self.config.t_rp + self.config.t_rcd + self.config.t_cas + len
    }
}

impl MemorySystem for SerialGather {
    fn name(&self) -> &'static str {
        "serial-gather-sdram"
    }

    fn run_trace(&mut self, trace: &[TraceOp]) -> RunOutcome {
        let elements = trace_elements(trace);
        RunOutcome {
            cycles: trace
                .iter()
                .map(|op| self.command_cycles(op.vector.length()))
                .sum(),
            // A gathering system moves only the useful words.
            bytes_transferred: elements * WORD_BYTES,
            stats: RunStats {
                commands: trace.len() as u64,
                elements,
                // One visible RAS and one precharge per command; the
                // rest overlap per the paper's idealization.
                activates: trace.len() as u64,
                precharges: trace.len() as u64,
            },
        }
    }

    fn reset(&mut self) {
        // Closed-form model: stateless between runs.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Vector;

    #[test]
    fn cost_is_stride_independent() {
        let mut sys = SerialGather::default();
        let c1 = sys.run_trace(&[TraceOp::read(Vector::new(0, 1, 32).unwrap())]);
        let c19 = sys.run_trace(&[TraceOp::read(Vector::new(7, 19, 32).unwrap())]);
        assert_eq!(c1, c19);
        assert_eq!(c1.bytes_transferred, 32 * 4);
    }

    #[test]
    fn cost_scales_with_length() {
        let sys = SerialGather::default();
        assert_eq!(sys.command_cycles(32), 38);
        assert_eq!(sys.command_cycles(1), 7);
    }

    #[test]
    fn commands_are_serial() {
        let mut sys = SerialGather::default();
        let v = Vector::new(0, 2, 32).unwrap();
        let one = sys.run_trace(&[TraceOp::read(v)]).cycles;
        let four = sys.run_trace(&[TraceOp::read(v); 4]).cycles;
        assert_eq!(four, 4 * one);
    }
}
