//! # memsys — the four memory systems of the PVA evaluation
//!
//! §6.1 of the paper benchmarks the PVA against three other memory
//! systems. This crate provides all four behind one object-safe trait so
//! the experiment harness can sweep them uniformly:
//!
//! | System | Type | Model |
//! |---|---|---|
//! | [`PvaSystem::sdram`] | prototype | cycle-level [`pva_sim::PvaUnit`] |
//! | [`PvaSystem::sram`]  | idealized | same unit over 1-cycle memory |
//! | [`CachelineSerial`]  | baseline  | 20-cycle line fills, no gathering |
//! | [`SerialGather`]     | baseline  | element-serial gathering, closed page |
//!
//! [`SmcLike`] adds a fifth, related-work system (§3.1): a Stream
//! Memory Controller analogue with stream buffers and dynamic access
//! ordering behind a serial controller.
//!
//! The two baselines use the closed-form costs the paper itself states
//! for them (they are *idealized* comparators in the paper too — the
//! gate-level simulation was only of the PVA).
//!
//! Systems are assembled through the [`SystemRegistry`] builder and
//! each trace run reports a structured [`RunOutcome`]:
//!
//! ```
//! use memsys::{MemorySystem, SystemRegistry, TraceOp};
//! use pva_core::Vector;
//!
//! let trace = [TraceOp::read(Vector::new(0, 16, 32)?)];
//! for mut sys in SystemRegistry::with_defaults().build() {
//!     let out = sys.run_trace(&trace);
//!     assert!(out.cycles > 0, "{} must take time", sys.name());
//!     assert!(out.bytes_transferred >= 32 * 4, "words must move");
//! }
//! # Ok::<(), pva_core::PvaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cacheline;
pub mod deadline;
mod pva_systems;
mod registry;
mod serial_gather;
mod smc;
mod trace;

pub use cacheline::{CachelineConfig, CachelineSerial};
pub use deadline::DeadlineExceeded;
pub use pva_systems::PvaSystem;
pub use registry::SystemRegistry;
pub use serial_gather::{SerialGather, SerialGatherConfig};
pub use smc::SmcLike;
pub use trace::{MemorySystem, RunOutcome, RunStats, TraceOp, WORD_BYTES};

/// Re-export of the operation direction used in [`TraceOp`], so
/// downstream crates can match on it without depending on `pva-sim`.
pub use pva_sim::OpKind;

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Vector;

    #[test]
    fn default_registry_has_distinct_names() {
        let systems = SystemRegistry::with_defaults().build();
        let names: Vec<&str> = systems.iter().map(|s| s.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn reset_then_rerun_is_identical() {
        let trace: Vec<TraceOp> = (0..4)
            .map(|i| TraceOp::read(Vector::new(i * 512, 16, 32).unwrap()))
            .collect();
        for mut sys in SystemRegistry::with_defaults()
            .smc(SmcLike::default())
            .build()
        {
            let first = sys.run_trace(&trace);
            sys.reset();
            let second = sys.run_trace(&trace);
            assert_eq!(first, second, "{}", sys.name());
        }
    }

    #[test]
    fn pva_beats_cacheline_at_large_stride() {
        // The core result: at stride 16, the line-fill system moves 16x
        // the data and loses badly.
        let trace: Vec<TraceOp> = (0..8)
            .map(|i| TraceOp::read(Vector::new(i * 512, 16, 32).unwrap()))
            .collect();
        let pva = PvaSystem::sdram().run_trace(&trace).cycles;
        let cls = CachelineSerial::default().run_trace(&trace).cycles;
        assert!(cls > 2 * pva, "cacheline {cls} vs pva {pva}");
    }

    #[test]
    fn cacheline_matches_pva_at_unit_stride() {
        // §6.3.1: for unit stride the two are comparable (within ~10%).
        let trace: Vec<TraceOp> = (0..16)
            .map(|i| TraceOp::read(Vector::new(i * 32, 1, 32).unwrap()))
            .collect();
        let pva = PvaSystem::sdram().run_trace(&trace).cycles as f64;
        let cls = CachelineSerial::default().run_trace(&trace).cycles as f64;
        let ratio = cls / pva;
        assert!((0.8..=1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pva_beats_serial_gather_on_parallel_strides() {
        let trace: Vec<TraceOp> = (0..16)
            .map(|i| TraceOp::read(Vector::new(i * 640, 19, 32).unwrap()))
            .collect();
        let pva = PvaSystem::sdram().run_trace(&trace).cycles;
        let ser = SerialGather::default().run_trace(&trace).cycles;
        assert!(ser > pva, "serial {ser} vs pva {pva}");
    }
}
