//! Memory-reference traces: the interface between workloads and memory
//! systems.

use pva_core::Vector;
use pva_sim::OpKind;

/// Bytes per data word (the prototype's 32-bit words: 128-byte lines of
/// 32 words).
pub const WORD_BYTES: u64 = 4;

/// One vector-granularity memory operation in a workload trace (at most
/// one cache line of elements — long application vectors are chunked by
/// the front end before reaching any memory system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// The elements accessed.
    pub vector: Vector,
    /// Direction.
    pub kind: OpKind,
}

impl TraceOp {
    /// A gathered read of `vector`.
    pub fn read(vector: Vector) -> Self {
        TraceOp {
            vector,
            kind: OpKind::Read,
        }
    }

    /// A scattered write of `vector`.
    pub fn write(vector: Vector) -> Self {
        TraceOp {
            vector,
            kind: OpKind::Write,
        }
    }
}

/// Statistics common to every memory system. Closed-form comparators
/// fill what their model defines and leave the rest zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Vector commands consumed from the trace.
    pub commands: u64,
    /// Useful elements gathered or scattered (excludes the waste words
    /// a line-fill system drags along — those show up only in
    /// [`RunOutcome::bytes_transferred`]).
    pub elements: u64,
    /// Row activates issued (0 for models that do not track rows).
    pub activates: u64,
    /// Precharges issued, including auto-precharges (0 likewise).
    pub precharges: u64,
}

/// Aggregate result of executing one trace on a memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total cycles from idle to fully drained.
    pub cycles: u64,
    /// Bytes that crossed the memory data pins — *useful or not*, so a
    /// line-fill system's wasted words are visible here.
    pub bytes_transferred: u64,
    /// Model-level counters.
    pub stats: RunStats,
}

impl RunOutcome {
    /// Data-bus efficiency in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bytes_transferred as f64 / self.cycles as f64
        }
    }
}

/// A memory system under evaluation: consumes a trace, reports the
/// outcome.
///
/// Implementations are the four systems of §6.1 plus the related-work
/// [`SmcLike`](crate::SmcLike). The trait is object safe so the
/// experiment harness can sweep a heterogeneous list.
pub trait MemorySystem {
    /// Short display name for reports ("pva-sdram", "cacheline-serial",
    /// ...).
    fn name(&self) -> &'static str;

    /// Executes the trace from an idle state and returns the aggregate
    /// [`RunOutcome`].
    fn run_trace(&mut self, trace: &[TraceOp]) -> RunOutcome;

    /// Executes the trace from an idle state but stops once the
    /// simulated clock reaches `deadline` cycles, returning the
    /// (possibly partial) outcome and whether the trace fully drained.
    /// Cycle-level systems override this with a genuinely bounded run
    /// (the PVA model batches it on its event-driven core); the default
    /// suits closed-form models whose outcome is computed in one shot —
    /// the full outcome, flagged complete only when it fits the budget.
    fn run_until(&mut self, trace: &[TraceOp], deadline: u64) -> (RunOutcome, bool) {
        let outcome = self.run_trace(trace);
        let complete = outcome.cycles <= deadline;
        (outcome, complete)
    }

    /// Returns the system to its post-construction idle state, so one
    /// boxed instance can run many scenarios back to back.
    fn reset(&mut self);
}

/// Sum of useful elements across a trace.
pub(crate) fn trace_elements(trace: &[TraceOp]) -> u64 {
    trace.iter().map(|op| op.vector.length()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let v = Vector::new(0, 2, 8).unwrap();
        assert_eq!(TraceOp::read(v).kind, OpKind::Read);
        assert_eq!(TraceOp::write(v).kind, OpKind::Write);
    }

    #[test]
    fn bytes_per_cycle_handles_zero_cycles() {
        let o = RunOutcome::default();
        assert_eq!(o.bytes_per_cycle(), 0.0);
        let o = RunOutcome {
            cycles: 10,
            bytes_transferred: 40,
            stats: RunStats::default(),
        };
        assert!((o.bytes_per_cycle() - 4.0).abs() < 1e-12);
    }
}
