//! Memory-reference traces: the interface between workloads and memory
//! systems.

use pva_core::Vector;
use pva_sim::OpKind;

/// One vector-granularity memory operation in a workload trace (at most
/// one cache line of elements — long application vectors are chunked by
/// the front end before reaching any memory system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// The elements accessed.
    pub vector: Vector,
    /// Direction.
    pub kind: OpKind,
}

impl TraceOp {
    /// A gathered read of `vector`.
    pub fn read(vector: Vector) -> Self {
        TraceOp {
            vector,
            kind: OpKind::Read,
        }
    }

    /// A scattered write of `vector`.
    pub fn write(vector: Vector) -> Self {
        TraceOp {
            vector,
            kind: OpKind::Write,
        }
    }
}

/// A memory system under evaluation: consumes a trace, reports cycles.
///
/// Implementations are the four systems of §6.1. The trait is object
/// safe so the experiment harness can sweep a heterogeneous list.
pub trait MemorySystem {
    /// Short display name for reports ("pva-sdram", "cacheline-serial",
    /// ...).
    fn name(&self) -> &'static str;

    /// Executes the trace from an idle state and returns the total cycle
    /// count. Each call is independent (state resets between runs).
    fn run_trace(&mut self, trace: &[TraceOp]) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let v = Vector::new(0, 2, 8).unwrap();
        assert_eq!(TraceOp::read(v).kind, OpKind::Read);
        assert_eq!(TraceOp::write(v).kind, OpKind::Write);
    }
}
