//! An SMC-like comparator: the Stream Memory Controller of McKee et al.
//! (§3.1 related work).
//!
//! "The SMC combines programmable stream buffers and prefetching within
//! a memory controller that performs intelligent DRAM scheduling. The
//! SMC dynamically reorders vector or stream accesses to exploit
//! parallelism among multiple banks and to exploit locality of
//! reference within DRAM page buffers."
//!
//! This model captures the architectural contrast with the PVA: the SMC
//! gathers only the useful words (like the PVA) and reorders for row
//! locality (like the PVA), but issues addresses through a *single
//! centralized controller* — one SDRAM command per cycle across the
//! whole memory — rather than broadcasting to per-bank controllers.
//! Its element throughput is therefore capped at one per cycle, while
//! its reordering hides activate/precharge latency behind accesses to
//! other streams ("for most vector alignments and strides ... simple
//! ordering schemes were found to perform competitively with
//! sophisticated ones", so the policy here is simple: prefer the stream
//! whose next access hits an open row, else the oldest).

use pva_core::Geometry;
use sdram::{Sdram, SdramCmd, SdramConfig};

use crate::trace::{trace_elements, MemorySystem, RunOutcome, RunStats, TraceOp, WORD_BYTES};

/// One in-service stream: the remaining element addresses of a vector
/// command, FIFO order.
#[derive(Debug, Clone)]
struct StreamBuffer {
    /// Remaining global word addresses, oldest first (reversed storage).
    addrs: Vec<u64>,
    /// Arrival order, for FIFO tie-breaking.
    seq: u64,
}

impl StreamBuffer {
    fn next_addr(&self) -> Option<u64> {
        self.addrs.last().copied()
    }
}

/// The SMC-like serial gathering controller with stream reordering.
///
/// # Examples
///
/// ```
/// use memsys::{MemorySystem, SmcLike, TraceOp};
/// use pva_core::Vector;
///
/// let mut sys = SmcLike::default();
/// let t = [TraceOp::read(Vector::new(0, 19, 32)?)];
/// assert!(sys.run_trace(&t).cycles > 32); // 1 element/cycle + row overhead
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SmcLike {
    geometry: Geometry,
    sdram: SdramConfig,
    /// Concurrent stream buffers (the SMC's FIFO count).
    pub stream_buffers: usize,
}

impl Default for SmcLike {
    fn default() -> Self {
        SmcLike {
            geometry: Geometry::default(),
            sdram: SdramConfig::default(),
            stream_buffers: 4,
        }
    }
}

impl SmcLike {
    /// Creates the system with explicit parameters.
    pub fn new(geometry: Geometry, sdram: SdramConfig, stream_buffers: usize) -> Self {
        SmcLike {
            geometry,
            sdram,
            stream_buffers,
        }
    }
}

impl MemorySystem for SmcLike {
    fn name(&self) -> &'static str {
        "smc-like-serial"
    }

    fn run_trace(&mut self, trace: &[TraceOp]) -> RunOutcome {
        // One SDRAM device per external bank, all fed by one serial
        // command stream (one command per cycle total).
        let banks = self.geometry.banks() as usize;
        let mut devices: Vec<Sdram> = (0..banks).map(|_| Sdram::new(self.sdram)).collect();
        let mut pending: std::collections::VecDeque<StreamBuffer> = trace
            .iter()
            .enumerate()
            .map(|(i, op)| StreamBuffer {
                addrs: op.vector.addresses().rev().collect(),
                seq: i as u64,
            })
            .collect();
        let mut active: Vec<StreamBuffer> = Vec::new();
        let mut cycles = 0u64;
        let max_cycles = 100_000_000;

        while !pending.is_empty() || !active.is_empty() {
            // Refill stream buffers.
            while active.len() < self.stream_buffers {
                match pending.pop_front() {
                    Some(s) => active.push(s),
                    None => break,
                }
            }
            // Pick a stream: first preference, one whose next access
            // hits an open row and is issuable now; else try to open a
            // row for the oldest blocked stream; else wait.
            let mut issued = false;
            let mut order: Vec<usize> = (0..active.len()).collect();
            order.sort_by_key(|&i| active[i].seq);
            // Phase 1: row hits.
            for &i in &order {
                let addr = active[i].next_addr().expect("active streams are nonempty");
                let bank = self.geometry.decode_bank(addr).index();
                let local = self.geometry.bank_local_addr(addr);
                let ia = self.sdram.map(local);
                let dev = &mut devices[bank];
                if dev.open_row(ia.bank) == Some(ia.row) {
                    let cmd = SdramCmd::Read {
                        bank: ia.bank,
                        col: ia.col,
                        auto_precharge: false,
                        tag: 0,
                    };
                    if dev.issue(cmd).is_ok() {
                        active[i].addrs.pop();
                        issued = true;
                        break;
                    }
                }
            }
            // Phase 2: open/close rows. The stream buffers give the
            // controller lookahead: it may open rows for *upcoming*
            // FIFO entries while earlier accesses wait out tRCD — the
            // prefetching half of the SMC design. Precharging is only
            // done for a stream's head element (conservative).
            if !issued {
                'open: for &i in &order {
                    for (depth, &addr) in active[i].addrs.iter().rev().take(8).enumerate() {
                        let bank = self.geometry.decode_bank(addr).index();
                        let local = self.geometry.bank_local_addr(addr);
                        let ia = self.sdram.map(local);
                        let dev = &mut devices[bank];
                        let cmd = match dev.open_row(ia.bank) {
                            None => SdramCmd::Activate {
                                bank: ia.bank,
                                row: ia.row,
                            },
                            Some(r) if r != ia.row && depth == 0 => {
                                SdramCmd::Precharge { bank: ia.bank }
                            }
                            Some(_) => continue,
                        };
                        if dev.issue(cmd).is_ok() {
                            break 'open;
                        }
                    }
                }
            }
            // Advance time.
            for dev in &mut devices {
                dev.tick();
                dev.take_ready_data();
            }
            cycles += 1;
            assert!(cycles < max_cycles, "SMC model livelock");
            active.retain(|s| !s.addrs.is_empty());
        }
        // Drain CAS latency of the final reads.
        let elements = trace_elements(trace);
        let (mut activates, mut precharges) = (0u64, 0u64);
        for dev in &devices {
            let s = dev.stats();
            activates += s.activates;
            precharges += s.precharges + s.auto_precharges;
        }
        RunOutcome {
            cycles: cycles + self.sdram.t_cas as u64,
            bytes_transferred: elements * WORD_BYTES,
            stats: RunStats {
                commands: trace.len() as u64,
                elements,
                activates,
                precharges,
            },
        }
    }

    fn reset(&mut self) {
        // Devices and stream buffers are rebuilt per run.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Vector;

    fn read(base: u64, stride: u64, len: u64) -> TraceOp {
        TraceOp::read(Vector::new(base, stride, len).unwrap())
    }

    #[test]
    fn serial_issue_caps_throughput() {
        let mut sys = SmcLike::default();
        // 4 x 32 elements: at one element per cycle, at least 128 cycles.
        let t = [
            read(0, 19, 32),
            read(4096, 19, 32),
            read(8192, 19, 32),
            read(12288, 19, 32),
        ];
        let c = sys.run_trace(&t).cycles;
        assert!(c >= 128, "serial floor: {c}");
        assert!(c < 300, "reordering keeps overhead modest: {c}");
    }

    #[test]
    fn row_locality_exploited_within_stream() {
        // Stride 16: consecutive local addresses, same row. One
        // activate, then 1 element/cycle.
        let mut sys = SmcLike::default();
        let one = sys.run_trace(&[read(0, 16, 32)]).cycles;
        assert!(one < 32 + 12, "row reuse: {one}");
    }

    #[test]
    fn multiple_streams_hide_row_opens() {
        // Two streams in different banks: opening stream B's row should
        // overlap with stream A's accesses, so 2 interleaved streams
        // cost much less than 2x one stream run serially back-to-back.
        let mut sys = SmcLike::default();
        let a = read(0, 16, 32); // bank 0
        let b = read(1, 16, 32); // bank 1
        let together = sys.run_trace(&[a, b]).cycles;
        let single = sys.run_trace(&[a]).cycles;
        assert!(together < 2 * single, "overlap: {together} vs 2 x {single}");
    }

    #[test]
    fn smc_loses_to_pva_on_parallel_strides() {
        // The architectural contrast: with 16 banks of parallelism
        // available (stride 19), the PVA's broadcast approach beats the
        // SMC's serial issue.
        use crate::pva_systems::PvaSystem;
        let trace: Vec<TraceOp> = (0..8).map(|i| read(i * 640, 19, 32)).collect();
        let smc = SmcLike::default().run_trace(&trace).cycles;
        let pva = PvaSystem::sdram().run_trace(&trace).cycles;
        assert!(smc > pva, "smc {smc} vs pva {pva}");
    }
}
