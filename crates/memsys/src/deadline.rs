//! Cooperative wall-clock deadlines for bounded simulation runs.
//!
//! The bench harness gives each scenario cell a wall-clock budget. A
//! cell's worker thread arms the budget with [`with_deadline`]; the
//! simulation entry points ([`PvaSystem::run_trace`] runs in bounded
//! slices, campaign loops call [`checkpoint`] between operations) then
//! observe it cooperatively: once the deadline passes, [`checkpoint`]
//! unwinds with a [`DeadlineExceeded`] payload that the harness catches
//! and records as a structured timeout instead of a hang.
//!
//! The deadline is thread-local, so concurrent cells on a worker pool
//! cannot trip each other, and a nested `with_deadline` restores the
//! outer deadline on exit (including on unwind).
//!
//! [`PvaSystem::run_trace`]: crate::PvaSystem

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Panic payload raised by [`checkpoint`] when the armed wall-clock
/// deadline has passed. Harnesses downcast to this type to distinguish
/// a cooperative timeout from a genuine panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// The configured budget that was exceeded.
    pub limit: Duration,
}

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded its {:.3}s wall-clock deadline",
            self.limit.as_secs_f64()
        )
    }
}

/// Runs `f` with a wall-clock deadline of `limit` from now armed on
/// this thread, restoring the previous deadline (if any) afterwards —
/// also on unwind, so a caught [`DeadlineExceeded`] leaves the thread
/// clean for the next cell.
pub fn with_deadline<R>(limit: Duration, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|d| d.set(self.0));
        }
    }
    let prev = DEADLINE.with(|d| d.replace(Some(Instant::now() + limit)));
    let _restore = Restore(prev);
    f()
}

/// Whether a deadline is armed on this thread.
pub fn active() -> bool {
    DEADLINE.with(|d| d.get().is_some())
}

/// Whether the armed deadline (if any) has passed.
pub fn expired() -> bool {
    DEADLINE
        .with(|d| d.get())
        .is_some_and(|t| Instant::now() >= t)
}

/// Remaining budget, if a deadline is armed ([`Duration::ZERO`] once
/// expired).
pub fn remaining() -> Option<Duration> {
    DEADLINE
        .with(|d| d.get())
        .map(|t| t.saturating_duration_since(Instant::now()))
}

/// Unwinds with [`DeadlineExceeded`] if the armed deadline has passed;
/// a no-op when no deadline is armed or time remains. Simulation loops
/// call this at a granularity coarse enough to be free and fine enough
/// to bound overshoot (between trace ops, or every few thousand
/// simulated cycles).
pub fn checkpoint() {
    if let Some(t) = DEADLINE.with(|d| d.get()) {
        let now = Instant::now();
        if now >= t {
            // `limit` is not recoverable from the thread-local (only the
            // absolute expiry is stored); report the overshoot instead.
            std::panic::panic_any(DeadlineExceeded {
                limit: now.saturating_duration_since(t),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default_and_checkpoint_is_inert() {
        assert!(!active());
        assert!(!expired());
        assert!(remaining().is_none());
        checkpoint(); // must not panic
    }

    #[test]
    fn with_deadline_arms_and_restores() {
        with_deadline(Duration::from_secs(60), || {
            assert!(active());
            assert!(!expired());
            assert!(remaining().unwrap() > Duration::from_secs(30));
            checkpoint(); // plenty of budget left
        });
        assert!(!active());
    }

    #[test]
    fn expired_deadline_unwinds_with_typed_payload() {
        let caught = std::panic::catch_unwind(|| {
            with_deadline(Duration::ZERO, || {
                std::thread::sleep(Duration::from_millis(2));
                checkpoint();
                unreachable!("checkpoint must unwind");
            })
        });
        let payload = caught.expect_err("must unwind");
        assert!(
            payload.downcast_ref::<DeadlineExceeded>().is_some(),
            "payload must be DeadlineExceeded"
        );
        // The guard restored the thread state despite the unwind.
        assert!(!active());
    }

    #[test]
    fn nested_deadlines_restore_the_outer_one() {
        with_deadline(Duration::from_secs(60), || {
            let outer = remaining().unwrap();
            with_deadline(Duration::from_secs(5), || {
                assert!(remaining().unwrap() <= Duration::from_secs(5));
            });
            assert!(remaining().unwrap() <= outer);
            assert!(remaining().unwrap() > Duration::from_secs(5));
        });
    }
}
