//! The "cache line interleaved serial SDRAM" comparator (§6.1).
//!
//! An idealized 16-module SDRAM system optimized for line fills: every
//! distinct 128-byte line touched by a vector is fetched whole, and each
//! fill costs 20 cycles — two for RAS, two for CAS, sixteen for the
//! 64-bit-bus data burst. Precharges are (optimistically) overlapped
//! with other modules and writes cost the same as reads, exactly as the
//! paper assumes. No gathering: sparse vectors waste bus and DRAM
//! bandwidth on unused words, which is the inefficiency the PVA exists
//! to remove.

use std::collections::BTreeSet;

use crate::trace::{trace_elements, MemorySystem, RunOutcome, RunStats, TraceOp, WORD_BYTES};

/// Configuration of the idealized line-fill system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachelineConfig {
    /// Words per cache line (32 in the prototype: 128 B of 4-byte words).
    pub line_words: u64,
    /// RAS cycles per fill.
    pub ras: u64,
    /// CAS cycles per fill.
    pub cas: u64,
    /// Data-burst cycles per fill (line bytes over the 64-bit bus).
    pub burst: u64,
}

impl Default for CachelineConfig {
    fn default() -> Self {
        CachelineConfig {
            line_words: 32,
            ras: 2,
            cas: 2,
            burst: 16,
        }
    }
}

impl CachelineConfig {
    /// Cycles per line fill (20 in the paper).
    pub const fn fill_cycles(&self) -> u64 {
        self.ras + self.cas + self.burst
    }
}

/// The serial line-fill memory system.
///
/// # Examples
///
/// ```
/// use memsys::{CachelineSerial, MemorySystem, TraceOp};
/// use pva_core::Vector;
///
/// let mut sys = CachelineSerial::default();
/// // A unit-stride 32-word vector touches exactly one line: 20 cycles.
/// let t = [TraceOp::read(Vector::new(0, 1, 32)?)];
/// assert_eq!(sys.run_trace(&t).cycles, 20);
/// // Stride 16 touches 16 lines: 320 cycles for the same 32 words —
/// // and 16x the bus traffic, which the outcome makes visible.
/// let t = [TraceOp::read(Vector::new(0, 16, 32)?)];
/// let out = sys.run_trace(&t);
/// assert_eq!(out.cycles, 320);
/// assert_eq!(out.bytes_transferred, 16 * 32 * 4);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CachelineSerial {
    config: CachelineConfig,
}

impl CachelineSerial {
    /// Creates the system with explicit parameters.
    pub fn new(config: CachelineConfig) -> Self {
        CachelineSerial { config }
    }

    /// Number of distinct lines a vector touches.
    pub fn lines_touched(&self, op: &TraceOp) -> u64 {
        let lw = self.config.line_words;
        let lines: BTreeSet<u64> = op.vector.addresses().map(|a| a / lw).collect();
        lines.len() as u64
    }
}

impl MemorySystem for CachelineSerial {
    fn name(&self) -> &'static str {
        "cacheline-serial-sdram"
    }

    fn run_trace(&mut self, trace: &[TraceOp]) -> RunOutcome {
        let lines: u64 = trace.iter().map(|op| self.lines_touched(op)).sum();
        RunOutcome {
            cycles: lines * self.config.fill_cycles(),
            // Whole lines cross the bus whether their words are useful
            // or not — the waste the PVA exists to remove.
            bytes_transferred: lines * self.config.line_words * WORD_BYTES,
            stats: RunStats {
                commands: trace.len() as u64,
                elements: trace_elements(trace),
                // One RAS per fill; precharges overlap with other
                // modules per the paper's idealization.
                activates: lines,
                precharges: 0,
            },
        }
    }

    fn reset(&mut self) {
        // Closed-form model: stateless between runs.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Vector;

    fn read(base: u64, stride: u64, len: u64) -> TraceOp {
        TraceOp::read(Vector::new(base, stride, len).unwrap())
    }

    #[test]
    fn line_counting_by_stride() {
        let sys = CachelineSerial::default();
        // Stride 1..32 with 32 elements touches ~stride lines.
        assert_eq!(sys.lines_touched(&read(0, 1, 32)), 1);
        assert_eq!(sys.lines_touched(&read(0, 2, 32)), 2);
        assert_eq!(sys.lines_touched(&read(0, 4, 32)), 4);
        assert_eq!(sys.lines_touched(&read(0, 8, 32)), 8);
        assert_eq!(sys.lines_touched(&read(0, 16, 32)), 16);
        assert_eq!(sys.lines_touched(&read(0, 19, 32)), 19);
        assert_eq!(sys.lines_touched(&read(0, 32, 32)), 32);
        // Beyond line-size strides, still one line per element.
        assert_eq!(sys.lines_touched(&read(0, 64, 32)), 32);
    }

    #[test]
    fn unaligned_vector_may_touch_one_extra_line() {
        let sys = CachelineSerial::default();
        // 32 unit-stride words starting mid-line span two lines.
        assert_eq!(sys.lines_touched(&read(16, 1, 32)), 2);
    }

    #[test]
    fn trace_costs_sum() {
        let mut sys = CachelineSerial::default();
        let t = [read(0, 1, 32), read(4096, 16, 32)];
        let out = sys.run_trace(&t);
        assert_eq!(out.cycles, 20 + 320);
        // 17 lines of 32 words fetched for 64 useful elements.
        assert_eq!(out.bytes_transferred, 17 * 32 * 4);
        assert_eq!(out.stats.elements, 64);
        assert_eq!(out.stats.commands, 2);
        assert_eq!(out.stats.activates, 17);
    }

    #[test]
    fn writes_cost_like_reads() {
        let mut sys = CachelineSerial::default();
        let r = [read(0, 4, 32)];
        let w = [TraceOp::write(Vector::new(0, 4, 32).unwrap())];
        assert_eq!(sys.run_trace(&r), sys.run_trace(&w));
    }
}
