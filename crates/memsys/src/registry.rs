//! [`SystemRegistry`]: a builder for the list of memory systems a sweep
//! runs over, replacing the old fixed `all_systems()` free function so
//! experiments can inject non-default configurations and optionally
//! include the related-work [`SmcLike`] comparator.

use pva_sim::PvaConfig;

use crate::cacheline::{CachelineConfig, CachelineSerial};
use crate::pva_systems::PvaSystem;
use crate::serial_gather::{SerialGather, SerialGatherConfig};
use crate::smc::SmcLike;
use crate::trace::MemorySystem;

/// Builder for a heterogeneous list of boxed [`MemorySystem`]s.
///
/// # Examples
///
/// The default §6.1 line-up:
///
/// ```
/// use memsys::SystemRegistry;
///
/// let systems = SystemRegistry::with_defaults().build();
/// assert_eq!(systems.len(), 4);
/// ```
///
/// A custom sweep — tweaked line-fill cost, plus the SMC comparator:
///
/// ```
/// use memsys::{CachelineConfig, SmcLike, SystemRegistry};
///
/// let mut cfg = CachelineConfig::default();
/// cfg.burst = 32; // 32-bit bus: twice the burst cycles
/// let systems = SystemRegistry::new()
///     .cacheline(cfg)
///     .smc(SmcLike::default())
///     .build();
/// assert_eq!(systems.len(), 2);
/// ```
#[derive(Default)]
pub struct SystemRegistry {
    systems: Vec<Box<dyn MemorySystem>>,
}

impl SystemRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SystemRegistry::default()
    }

    /// The four systems of §6.1 with their default configurations, in
    /// the paper's plotting order.
    pub fn with_defaults() -> Self {
        SystemRegistry::new()
            .pva_sdram(PvaConfig::default())
            .pva_sram()
            .cacheline(CachelineConfig::default())
            .serial_gather(SerialGatherConfig::default())
    }

    /// Adds the PVA prototype over SDRAM with an explicit configuration.
    pub fn pva_sdram(mut self, config: PvaConfig) -> Self {
        self.systems
            .push(Box::new(PvaSystem::with_config("pva-sdram", config)));
        self
    }

    /// Adds the idealized PVA-over-SRAM comparator.
    pub fn pva_sram(mut self) -> Self {
        self.systems.push(Box::new(PvaSystem::sram()));
        self
    }

    /// Adds the cache-line serial system with an explicit configuration.
    pub fn cacheline(mut self, config: CachelineConfig) -> Self {
        self.systems.push(Box::new(CachelineSerial::new(config)));
        self
    }

    /// Adds the gathering serial system with an explicit configuration.
    pub fn serial_gather(mut self, config: SerialGatherConfig) -> Self {
        self.systems.push(Box::new(SerialGather::new(config)));
        self
    }

    /// Adds the related-work SMC-like comparator (§3.1), which is not
    /// part of the paper's four-way evaluation and therefore opt-in.
    pub fn smc(mut self, smc: SmcLike) -> Self {
        self.systems.push(Box::new(smc));
        self
    }

    /// Adds any other [`MemorySystem`] implementation.
    pub fn custom(mut self, system: Box<dyn MemorySystem>) -> Self {
        self.systems.push(system);
        self
    }

    /// Finishes the builder, yielding the systems in insertion order.
    pub fn build(self) -> Vec<Box<dyn MemorySystem>> {
        self.systems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_four_paper_systems() {
        let names: Vec<&str> = SystemRegistry::with_defaults()
            .build()
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(
            names,
            [
                "pva-sdram",
                "pva-sram",
                "cacheline-serial-sdram",
                "serial-gather-sdram"
            ]
        );
    }

    #[test]
    fn smc_is_opt_in() {
        let with = SystemRegistry::with_defaults().smc(SmcLike::default());
        assert_eq!(with.build().len(), 5);
    }

    #[test]
    fn configs_are_injected_not_cloned_defaults() {
        let cfg = CachelineConfig {
            burst: 32,
            ..CachelineConfig::default()
        };
        let mut systems = SystemRegistry::new().cacheline(cfg).build();
        let t = [crate::TraceOp::read(
            pva_core::Vector::new(0, 1, 32).unwrap(),
        )];
        // 2 + 2 + 32 = 36 cycles per fill instead of the default 20.
        assert_eq!(systems[0].run_trace(&t).cycles, 36);
    }
}
