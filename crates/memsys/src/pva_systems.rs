//! The PVA-based systems of §6.1, as [`MemorySystem`] adapters around
//! the cycle-level [`PvaUnit`]:
//!
//! * **PVA SDRAM** — the paper's prototype;
//! * **PVA SRAM** — the same parallel-access front end over an
//!   idealized single-cycle memory ("min/max parallel vector access
//!   SRAM"); comparing the two measures how well the scheduler hides
//!   SDRAM's activate/precharge overheads (§6.3.1 / figure 11).

use pva_sim::{HostRequest, OpKind, PvaConfig, PvaUnit};

use crate::trace::{MemorySystem, RunOutcome, RunStats, TraceOp, WORD_BYTES};

/// A [`MemorySystem`] wrapping the cycle-level PVA unit.
#[derive(Debug, Clone)]
pub struct PvaSystem {
    config: PvaConfig,
    name: &'static str,
}

impl PvaSystem {
    /// The prototype: PVA front end over SDRAM.
    pub fn sdram() -> Self {
        PvaSystem {
            config: PvaConfig::default(),
            name: "pva-sdram",
        }
    }

    /// The idealized comparator: PVA front end over single-cycle SRAM.
    pub fn sram() -> Self {
        PvaSystem {
            config: PvaConfig::sram_backend(),
            name: "pva-sram",
        }
    }

    /// A custom-configured PVA system (used by the ablation benches).
    pub fn with_config(name: &'static str, config: PvaConfig) -> Self {
        PvaSystem { config, name }
    }

    /// The underlying configuration.
    pub const fn config(&self) -> &PvaConfig {
        &self.config
    }
}

impl MemorySystem for PvaSystem {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run_trace(&mut self, trace: &[TraceOp]) -> RunOutcome {
        let mut unit = PvaUnit::new(self.config).expect("valid configuration");
        let requests: Vec<HostRequest> = trace
            .iter()
            .map(|op| match op.kind {
                OpKind::Read => HostRequest::Read { vector: op.vector },
                OpKind::Write => HostRequest::Write {
                    vector: op.vector,
                    data: vec![0u64; op.vector.length() as usize],
                },
            })
            .collect();
        let result = unit.run(requests).expect("trace ops fit the line length");
        // Elements from the bank controllers (includes retried reads —
        // those words crossed the pins too); row traffic from the
        // summed device stats.
        let elements: u64 = result
            .bc_stats
            .iter()
            .map(|bc| bc.elements_read + bc.elements_written)
            .sum();
        RunOutcome {
            cycles: result.cycles,
            bytes_transferred: elements * WORD_BYTES,
            stats: RunStats {
                commands: result.stats.commands,
                elements,
                activates: result.sdram.activates,
                precharges: result.sdram.precharges + result.sdram.auto_precharges,
            },
        }
    }

    fn reset(&mut self) {
        // A fresh unit is built per run; there is nothing to clear.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Vector;

    #[test]
    fn sdram_system_runs_a_trace() {
        let mut sys = PvaSystem::sdram();
        let t = [
            TraceOp::read(Vector::new(0, 1, 32).unwrap()),
            TraceOp::write(Vector::new(4096, 1, 32).unwrap()),
        ];
        let out = sys.run_trace(&t);
        assert!(out.cycles > 0);
        // 32 reads + 32 writes of 4-byte words.
        assert_eq!(out.stats.elements, 64);
        assert_eq!(out.bytes_transferred, 64 * 4);
        assert!(out.stats.commands >= 2);
        assert!(out.stats.activates > 0);
        assert_eq!(sys.name(), "pva-sdram");
    }

    #[test]
    fn runs_are_independent() {
        // run_trace resets state: same trace, same cycles.
        let mut sys = PvaSystem::sdram();
        let t = [TraceOp::read(Vector::new(0, 19, 32).unwrap())];
        assert_eq!(sys.run_trace(&t), sys.run_trace(&t));
    }

    #[test]
    fn sram_tracks_sdram_on_parallel_strides() {
        let t: Vec<TraceOp> = (0..8)
            .map(|i| TraceOp::read(Vector::new(i * 640, 19, 32).unwrap()))
            .collect();
        let sdram = PvaSystem::sdram().run_trace(&t).cycles;
        let sram = PvaSystem::sram().run_trace(&t).cycles;
        let (lo, hi) = (sdram.min(sram) as f64, sdram.max(sram) as f64);
        assert!(hi <= lo * 1.2, "sdram {sdram} vs sram {sram}");
    }
}
