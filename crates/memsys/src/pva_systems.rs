//! The PVA-based systems of §6.1, as [`MemorySystem`] adapters around
//! the cycle-level [`PvaUnit`]:
//!
//! * **PVA SDRAM** — the paper's prototype;
//! * **PVA SRAM** — the same parallel-access front end over an
//!   idealized single-cycle memory ("min/max parallel vector access
//!   SRAM"); comparing the two measures how well the scheduler hides
//!   SDRAM's activate/precharge overheads (§6.3.1 / figure 11).

use pva_sim::{BcStats, EventStats, HostRequest, OpKind, PvaConfig, PvaUnit};

use crate::trace::{MemorySystem, RunOutcome, RunStats, TraceOp, WORD_BYTES};

/// A [`MemorySystem`] wrapping the cycle-level PVA unit.
#[derive(Debug, Clone)]
pub struct PvaSystem {
    config: PvaConfig,
    name: &'static str,
    /// Event-loop counters from the most recent run (all zero before
    /// the first run, and for the reference model, which has no event
    /// queue).
    events: EventStats,
    /// Bank-controller counters of the most recent run, summed over
    /// all controllers (all zero before the first run).
    bc: BcStats,
    /// CAS commands (reads + writes) the devices accepted in the most
    /// recent run — the denominator for per-CAS scheduler rates.
    cas_commands: u64,
}

impl PvaSystem {
    /// The prototype: PVA front end over SDRAM.
    pub fn sdram() -> Self {
        PvaSystem {
            config: PvaConfig::default(),
            name: "pva-sdram",
            events: EventStats::default(),
            bc: BcStats::default(),
            cas_commands: 0,
        }
    }

    /// The idealized comparator: PVA front end over single-cycle SRAM.
    pub fn sram() -> Self {
        PvaSystem {
            config: PvaConfig::sram_backend(),
            name: "pva-sram",
            events: EventStats::default(),
            bc: BcStats::default(),
            cas_commands: 0,
        }
    }

    /// A custom-configured PVA system (used by the ablation benches).
    pub fn with_config(name: &'static str, config: PvaConfig) -> Self {
        PvaSystem {
            config,
            name,
            events: EventStats::default(),
            bc: BcStats::default(),
            cas_commands: 0,
        }
    }

    /// The underlying configuration.
    pub const fn config(&self) -> &PvaConfig {
        &self.config
    }

    /// Event-loop counters from the most recent run: executed versus
    /// skipped cycles, wake-ups popped, and the jump-size histogram.
    /// All zero for the reference model.
    pub const fn event_stats(&self) -> &EventStats {
        &self.events
    }

    /// Bank-controller counters from the most recent run, summed over
    /// all controllers — includes the generation-aware scheduler's
    /// group switches, coalesced bursts, and deferred activates.
    pub const fn scheduler_stats(&self) -> &BcStats {
        &self.bc
    }

    /// CAS commands (read + write bursts) the devices accepted in the
    /// most recent run. With burst coalescing one CAS can carry
    /// several elements, so this runs below the element count on
    /// BL4/BL8 parts.
    pub const fn cas_commands(&self) -> u64 {
        self.cas_commands
    }
}

impl MemorySystem for PvaSystem {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run_trace(&mut self, trace: &[TraceOp]) -> RunOutcome {
        let (outcome, complete) = self.run_until(trace, u64::MAX);
        debug_assert!(complete, "an unbounded run always drains");
        outcome
    }

    fn run_until(&mut self, trace: &[TraceOp], deadline: u64) -> (RunOutcome, bool) {
        let mut unit = PvaUnit::new(self.config).expect("valid configuration");
        for op in trace {
            let request = match op.kind {
                OpKind::Read => HostRequest::Read { vector: op.vector },
                OpKind::Write => HostRequest::Write {
                    vector: op.vector,
                    data: vec![0u64; op.vector.length() as usize],
                },
            };
            unit.submit(request).expect("trace ops fit the line length");
        }
        let complete = if crate::deadline::active() {
            // A wall-clock deadline is armed on this thread (bench cell
            // timeout): run in bounded slices so a long simulation hits
            // a cooperative checkpoint within milliseconds instead of
            // only at the end. Each slice resumes from `unit.now()`, so
            // slicing never re-simulates and the result is identical to
            // one unbounded call.
            const SLICE: u64 = 8192;
            loop {
                crate::deadline::checkpoint();
                let cap = unit.now().saturating_add(SLICE).min(deadline);
                let idle = unit
                    .run_until(cap)
                    .expect("no watchdog trip inside the budget");
                if idle || cap >= deadline {
                    break idle;
                }
            }
        } else {
            unit.run_until(deadline)
                .expect("no watchdog trip inside the budget")
        };
        self.events = *unit.event_stats();
        // Elements from the bank controllers (includes retried reads —
        // those words crossed the pins too); row traffic from the
        // summed device stats.
        let mut bc = BcStats::default();
        for s in &unit.bc_stats() {
            bc.merge(s);
        }
        self.bc = bc;
        let elements: u64 = bc.elements_read + bc.elements_written;
        let sdram = unit.sdram_stats();
        self.cas_commands = sdram.reads + sdram.writes;
        let outcome = RunOutcome {
            cycles: unit.now(),
            bytes_transferred: elements * WORD_BYTES,
            stats: RunStats {
                commands: unit.stats().commands,
                elements,
                activates: sdram.activates,
                precharges: sdram.precharges + sdram.auto_precharges,
            },
        };
        (outcome, complete)
    }

    fn reset(&mut self) {
        // A fresh unit is built per run; there is nothing to clear.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Vector;

    #[test]
    fn sdram_system_runs_a_trace() {
        let mut sys = PvaSystem::sdram();
        let t = [
            TraceOp::read(Vector::new(0, 1, 32).unwrap()),
            TraceOp::write(Vector::new(4096, 1, 32).unwrap()),
        ];
        let out = sys.run_trace(&t);
        assert!(out.cycles > 0);
        // 32 reads + 32 writes of 4-byte words.
        assert_eq!(out.stats.elements, 64);
        assert_eq!(out.bytes_transferred, 64 * 4);
        assert!(out.stats.commands >= 2);
        assert!(out.stats.activates > 0);
        assert_eq!(sys.name(), "pva-sdram");
    }

    #[test]
    fn runs_are_independent() {
        // run_trace resets state: same trace, same cycles.
        let mut sys = PvaSystem::sdram();
        let t = [TraceOp::read(Vector::new(0, 19, 32).unwrap())];
        assert_eq!(sys.run_trace(&t), sys.run_trace(&t));
    }

    #[test]
    fn run_until_bounds_the_clock_and_flags_completion() {
        let mut sys = PvaSystem::sdram();
        let t = [
            TraceOp::read(Vector::new(0, 19, 32).unwrap()),
            TraceOp::write(Vector::new(1 << 16, 19, 32).unwrap()),
        ];
        let full = sys.run_trace(&t);
        // A generous budget drains the trace and matches the unbounded run.
        let (bounded, complete) = sys.run_until(&t, full.cycles + 100);
        assert!(complete);
        assert_eq!(bounded, full);
        // A tight budget stops at the deadline with partial stats.
        let deadline = full.cycles / 2;
        let (partial, complete) = sys.run_until(&t, deadline);
        assert!(!complete);
        assert_eq!(partial.cycles, deadline);
        assert!(partial.stats.elements < full.stats.elements);
    }

    #[test]
    fn run_until_partial_outcomes_match_the_reference_stepper() {
        // The bounded fast path must agree with the bounded reference
        // model at every deadline, not just at the end of the trace.
        let fast_cfg = PvaConfig {
            fast_sim: true,
            ..PvaConfig::default()
        };
        let ref_cfg = PvaConfig {
            fast_sim: false,
            ..PvaConfig::default()
        };
        let mut fast = PvaSystem::with_config("fast", fast_cfg);
        let mut slow = PvaSystem::with_config("ref", ref_cfg);
        let t: Vec<TraceOp> = (0..4)
            .map(|i| TraceOp::read(Vector::new(i * 512 * 16, 16, 32).unwrap()))
            .collect();
        let full = slow.run_trace(&t).cycles;
        for deadline in [0, 1, 7, full / 3, full / 2, full - 1, full, full + 50] {
            let f = fast.run_until(&t, deadline);
            let s = slow.run_until(&t, deadline);
            assert_eq!(f, s, "deadline {deadline}");
        }
    }

    #[test]
    fn sram_tracks_sdram_on_parallel_strides() {
        let t: Vec<TraceOp> = (0..8)
            .map(|i| TraceOp::read(Vector::new(i * 640, 19, 32).unwrap()))
            .collect();
        let sdram = PvaSystem::sdram().run_trace(&t).cycles;
        let sram = PvaSystem::sram().run_trace(&t).cycles;
        let (lo, hi) = (sdram.min(sram) as f64, sdram.max(sram) as f64);
        assert!(hi <= lo * 1.2, "sdram {sdram} vs sram {sram}");
    }
}
