//! The PVA-based systems of §6.1, as [`MemorySystem`] adapters around
//! the cycle-level [`PvaUnit`]:
//!
//! * **PVA SDRAM** — the paper's prototype;
//! * **PVA SRAM** — the same parallel-access front end over an
//!   idealized single-cycle memory ("min/max parallel vector access
//!   SRAM"); comparing the two measures how well the scheduler hides
//!   SDRAM's activate/precharge overheads (§6.3.1 / figure 11).

use pva_sim::{HostRequest, OpKind, PvaConfig, PvaUnit};

use crate::trace::{MemorySystem, TraceOp};

/// A [`MemorySystem`] wrapping the cycle-level PVA unit.
#[derive(Debug, Clone)]
pub struct PvaSystem {
    config: PvaConfig,
    name: &'static str,
}

impl PvaSystem {
    /// The prototype: PVA front end over SDRAM.
    pub fn sdram() -> Self {
        PvaSystem {
            config: PvaConfig::default(),
            name: "pva-sdram",
        }
    }

    /// The idealized comparator: PVA front end over single-cycle SRAM.
    pub fn sram() -> Self {
        PvaSystem {
            config: PvaConfig::sram_backend(),
            name: "pva-sram",
        }
    }

    /// A custom-configured PVA system (used by the ablation benches).
    pub fn with_config(name: &'static str, config: PvaConfig) -> Self {
        PvaSystem { config, name }
    }

    /// The underlying configuration.
    pub const fn config(&self) -> &PvaConfig {
        &self.config
    }
}

impl MemorySystem for PvaSystem {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run_trace(&mut self, trace: &[TraceOp]) -> u64 {
        let mut unit = PvaUnit::new(self.config).expect("valid configuration");
        let requests: Vec<HostRequest> = trace
            .iter()
            .map(|op| match op.kind {
                OpKind::Read => HostRequest::Read { vector: op.vector },
                OpKind::Write => HostRequest::Write {
                    vector: op.vector,
                    data: vec![0u64; op.vector.length() as usize],
                },
            })
            .collect();
        unit.run(requests)
            .expect("trace ops fit the line length")
            .cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Vector;

    #[test]
    fn sdram_system_runs_a_trace() {
        let mut sys = PvaSystem::sdram();
        let t = [
            TraceOp::read(Vector::new(0, 1, 32).unwrap()),
            TraceOp::write(Vector::new(4096, 1, 32).unwrap()),
        ];
        assert!(sys.run_trace(&t) > 0);
        assert_eq!(sys.name(), "pva-sdram");
    }

    #[test]
    fn runs_are_independent() {
        // run_trace resets state: same trace, same cycles.
        let mut sys = PvaSystem::sdram();
        let t = [TraceOp::read(Vector::new(0, 19, 32).unwrap())];
        assert_eq!(sys.run_trace(&t), sys.run_trace(&t));
    }

    #[test]
    fn sram_tracks_sdram_on_parallel_strides() {
        let t: Vec<TraceOp> = (0..8)
            .map(|i| TraceOp::read(Vector::new(i * 640, 19, 32).unwrap()))
            .collect();
        let sdram = PvaSystem::sdram().run_trace(&t);
        let sram = PvaSystem::sram().run_trace(&t);
        let (lo, hi) = (sdram.min(sram) as f64, sdram.max(sram) as f64);
        assert!(hi <= lo * 1.2, "sdram {sdram} vs sram {sram}");
    }
}
